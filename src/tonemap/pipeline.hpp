// The complete tone-mapping pipeline of Fig 1: normalization -> Gaussian
// blur (of the intensity plane) -> non-linear masking -> brightness &
// contrast adjustments. This is the *functional* pipeline; the platform/
// accel layers decide where each stage executes and at what cost.
#pragma once

#include <optional>
#include <string>

#include "exec/executor.hpp"
#include "image/image.hpp"
#include "tonemap/blur.hpp"
#include "tonemap/kernel.hpp"
#include "tonemap/operators.hpp"

namespace tmhls::tonemap {

/// Which numeric implementation computes the Gaussian blur stage. Kept as
/// the enum shorthand for the three golden datapaths; each value maps onto
/// an exec-layer backend of the same name (see backend_name), and
/// PipelineOptions::backend selects any registered backend by name.
enum class BlurKind {
  separable_float, ///< original CPU form (random neighbour access)
  streaming_float, ///< restructured line-buffer form, float datapath
  streaming_fixed, ///< restructured line-buffer form, fixed-point datapath
};

const char* to_string(BlurKind kind);

/// The exec-registry backend name realising a BlurKind.
const char* backend_name(BlurKind kind);

/// Pipeline configuration. Defaults reproduce the paper's workload.
struct PipelineOptions {
  /// Gaussian mask scale. sigma = 16 with radius = 3*sigma = 48 gives the
  /// 97-tap kernel used by all paper-reproduction experiments.
  double sigma = 16.0;
  /// Kernel radius; 0 selects ceil(3 * sigma).
  int radius = 0;
  /// Blur implementation to use for the mask.
  BlurKind blur = BlurKind::separable_float;
  /// Execution backend by registry name (e.g. "hlscode"); overrides `blur`
  /// when non-empty. `blur` then still selects the datapath of
  /// dual-datapath backends (streaming_fixed -> fixed). The reserved name
  /// "auto" picks the cheapest capable backend for the frame geometry via
  /// the calibrated cost hooks (exec::select_auto_backend).
  std::string backend;
  /// Worker threads for the mask stage's tiled execution mode (backends
  /// without the capability run single-threaded).
  int threads = 1;
  /// Fixed-point formats (used only by fixed-datapath backends).
  FixedBlurConfig fixed = FixedBlurConfig::paper();
  /// Display gamma applied within step 1 (normalisation): the non-linear
  /// masking operates on display-referred values (Moroney, CIC 2000).
  /// 1.0 disables the encoding.
  float display_gamma = 2.2f;
  /// External normalisation scale. 0 (default) normalises by the frame's
  /// own maximum (the paper's single-image behaviour); a positive value
  /// divides by that scale instead (clamping at 1), which video pipelines
  /// use to keep the mapping temporally stable across frames.
  float normalization_scale = 0.0f;
  /// Step-4 adjustments.
  float brightness = 0.05f;
  float contrast = 1.15f;

  /// The kernel implied by sigma/radius.
  GaussianKernel kernel() const;

  /// Resolve these options into an executor (registry lookup + thread /
  /// datapath configuration) for a frame of the given geometry — which
  /// backend == "auto" selects on. Callers running many frames build this
  /// once.
  exec::PipelineExecutor make_executor(int width, int height) const;

  /// Geometry-free overload: as above, assuming the paper's 1024x768
  /// frame when backend == "auto".
  exec::PipelineExecutor make_executor() const;
};

/// All intermediate artefacts of one pipeline run, for inspection, tests
/// and the experiments (e.g. the mask image, or the normalised input that
/// is the accelerator's actual input).
struct PipelineResult {
  img::ImageF normalized;  ///< step-1 output (input scaled into [0, 1])
  img::ImageF intensity;   ///< luminance plane fed to the blur
  img::ImageF mask;        ///< blurred intensity (the accelerated function's output)
  img::ImageF masked;      ///< step-3 output before adjustments
  img::ImageF output;      ///< final display-referred image in [0, 1]
  float input_max = 0.0f;  ///< normalisation scale that was applied
};

/// Run the full pipeline on a linear-light HDR image (1..4 channels).
/// The mask stage is delegated to the executor implied by `opt`.
PipelineResult tone_map(const img::ImageF& hdr, const PipelineOptions& opt = {});

/// As above but with a caller-owned executor (persistent across frames);
/// `opt`'s backend/threads fields are ignored in favour of `executor`.
PipelineResult tone_map(const img::ImageF& hdr, const PipelineOptions& opt,
                        const exec::PipelineExecutor& executor);

/// Convenience wrapper returning only the final image.
img::ImageF tone_map_image(const img::ImageF& hdr,
                           const PipelineOptions& opt = {});

} // namespace tmhls::tonemap
