// Fixed-point non-linear masking — the "next bottleneck" extension.
//
// The paper accelerates only the Gaussian blur; its §V conclusion leaves
// the rest of the pipeline on the ARM, which is why Table II's totals stay
// near 19 s. The obvious follow-on (evaluated in bench_ext_masking) is to
// move Moroney's correction itself into the programmable logic. This file
// provides the bit-accurate functional model of that datapath: the
// per-pixel gamma and the per-sample pow computed with the integer-only
// log2/exp2 construction of fixed::FixedMath.
#pragma once

#include "fixed/fixed_format.hpp"
#include "fixed/fixed_math.hpp"
#include "image/image.hpp"

namespace tmhls::tonemap {

/// Configuration of the fixed-point masking datapath.
struct FixedMaskingConfig {
  /// Pixel format at the accelerator boundary (bus-aligned).
  fixed::FixedFormat data;

  /// The paper-consistent choice: the same ap_fixed<16,2> as the blur.
  static FixedMaskingConfig paper();
};

/// Fixed-point equivalent of nonlinear_masking(): inputs and the mask are
/// quantised to `cfg.data`; gamma = 2^((m - 0.5)/0.5) and out = in^gamma
/// are evaluated with integer-only LUT math. Output samples are exact
/// fixed-point values widened to float.
img::ImageF nonlinear_masking_fixed(const img::ImageF& in,
                                    const img::ImageF& mask,
                                    const FixedMaskingConfig& cfg,
                                    const fixed::FixedMath& math);

} // namespace tmhls::tonemap
