// Bilateral filtering and the Durand-Dorsey-style base/detail local
// operator — the second *local* tone-mapping family from §II's taxonomy,
// included as a baseline against the paper's Moroney-style operator.
//
// A bilateral filter is an edge-preserving blur: each output pixel
// averages neighbours weighted by spatial distance AND by intensity
// difference, so halos around high-contrast edges (the classic artefact of
// Gaussian-mask operators) are suppressed. Durand & Dorsey (SIGGRAPH 2002)
// tone-map by compressing the bilateral-filtered "base" layer of the log
// luminance while preserving the "detail" layer.
#pragma once

#include "image/image.hpp"

namespace tmhls::tonemap {

/// Bilateral filter parameters.
struct BilateralOptions {
  double spatial_sigma = 8.0;  ///< Gaussian sigma over pixel distance
  double range_sigma = 0.4;    ///< Gaussian sigma over value difference
  /// Kernel radius; 0 selects ceil(2 * spatial_sigma) (the usual
  /// truncation for the bilateral's spatial kernel).
  int radius = 0;
};

/// Edge-preserving bilateral filter of a 1-channel image.
/// Direct O(pixels * taps^2) evaluation: exact, intended for the moderate
/// radii tone mapping needs.
img::ImageF bilateral_filter(const img::ImageF& src,
                             const BilateralOptions& opt = {});

/// Durand-Dorsey-style local operator:
///   log-luminance -> bilateral -> base; detail = log - base;
///   out_log = base * compression + detail;  (compression < 1)
/// scaled so the base layer spans `target_range` decades, then applied as
/// a luminance ratio to preserve colour. Returns display-referred [0, 1].
img::ImageF durand_local(const img::ImageF& hdr,
                         const BilateralOptions& filter = {},
                         double target_range_decades = 2.0);

} // namespace tmhls::tonemap
