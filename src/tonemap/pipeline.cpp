#include "tonemap/pipeline.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"

namespace tmhls::tonemap {

const char* to_string(BlurKind kind) {
  switch (kind) {
    case BlurKind::separable_float: return "separable_float";
    case BlurKind::streaming_float: return "streaming_float";
    case BlurKind::streaming_fixed: return "streaming_fixed";
  }
  return "?";
}

const char* backend_name(BlurKind kind) {
  // The three golden datapaths are registered under their enum names.
  return to_string(kind);
}

GaussianKernel PipelineOptions::kernel() const {
  if (radius > 0) return GaussianKernel(sigma, radius);
  return GaussianKernel(sigma);
}

exec::PipelineExecutor PipelineOptions::make_executor(int width,
                                                      int height) const {
  exec::ExecutorOptions eo;
  eo.threads = threads;
  eo.fixed = fixed;
  // With an explicit backend name, `blur` still carries the datapath
  // choice for dual-datapath backends (e.g. "hlscode" + streaming_fixed
  // runs the synthesizable fixed kernels).
  eo.use_fixed = (blur == BlurKind::streaming_fixed);
  if (backend == "auto") {
    return exec::PipelineExecutor(
        exec::select_auto_backend(width, height, kernel(), eo), eo);
  }
  const std::string name = backend.empty() ? backend_name(blur) : backend;
  const auto resolved = exec::BackendRegistry::global().resolve(name);
  // Asking a float-only backend for the fixed datapath would otherwise be
  // silently ignored (e.g. `--fixed --backend streaming_float`).
  TMHLS_REQUIRE(!eo.use_fixed || resolved->capabilities().fixed_datapath,
                "backend " + name +
                    " has no fixed-point datapath; drop the fixed-point "
                    "request or choose streaming_fixed / hlscode");
  return exec::PipelineExecutor(resolved, eo);
}

exec::PipelineExecutor PipelineOptions::make_executor() const {
  return make_executor(1024, 768);
}

PipelineResult tone_map(const img::ImageF& hdr, const PipelineOptions& opt) {
  TMHLS_REQUIRE(!hdr.empty(), "tone_map: empty image");
  return tone_map(hdr, opt, opt.make_executor(hdr.width(), hdr.height()));
}

PipelineResult tone_map(const img::ImageF& hdr, const PipelineOptions& opt,
                        const exec::PipelineExecutor& executor) {
  TMHLS_REQUIRE(!hdr.empty(), "tone_map: empty image");
  const GaussianKernel kernel = opt.kernel();

  PipelineResult r;
  if (opt.normalization_scale > 0.0f) {
    r.input_max = opt.normalization_scale;
    r.normalized = img::ImageF(hdr.width(), hdr.height(), hdr.channels());
    auto si = hdr.samples();
    auto so = r.normalized.samples();
    for (std::size_t i = 0; i < si.size(); ++i) {
      so[i] = clamp(si[i] / opt.normalization_scale, 0.0f, 1.0f);
    }
  } else {
    r.normalized = normalize_to_max(hdr, &r.input_max);
  }
  if (opt.display_gamma != 1.0f) {
    r.normalized = display_encode(r.normalized, opt.display_gamma);
  }
  r.intensity = img::luminance(r.normalized);

  r.mask = executor.blur(r.intensity, kernel);

  r.masked = nonlinear_masking(r.normalized, r.mask);
  r.output = brightness_contrast(r.masked, opt.brightness, opt.contrast);
  return r;
}

img::ImageF tone_map_image(const img::ImageF& hdr,
                           const PipelineOptions& opt) {
  return tone_map(hdr, opt).output;
}

} // namespace tmhls::tonemap
