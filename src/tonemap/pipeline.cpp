#include "tonemap/pipeline.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"
#include "tonemap/fused_stream.hpp"

namespace tmhls::tonemap {

const char* to_string(Datapath datapath) {
  switch (datapath) {
    case Datapath::unspecified: return "unspecified";
    case Datapath::float32: return "float";
    case Datapath::fixed_point: return "fixed";
  }
  return "?";
}

Datapath datapath_from_string(const std::string& name) {
  if (name == "float" || name == "float32") return Datapath::float32;
  if (name == "fixed" || name == "fixed_point") return Datapath::fixed_point;
  throw InvalidArgument("unknown datapath: " + name +
                        " (expected float or fixed)");
}

GaussianKernel PipelineOptions::kernel() const {
  if (radius > 0) return GaussianKernel(sigma, radius);
  return GaussianKernel(sigma);
}

ExecutionSelection PipelineOptions::execution() const {
  ExecutionSelection s;
  s.backend = backend.empty() ? "separable_float" : backend;
  s.use_fixed = (datapath == Datapath::fixed_point);
  return s;
}

exec::ExecutionPlan PipelineOptions::plan(int width, int height) const {
  exec::PlanRequest request;
  request.width = width;
  request.height = height;
  request.backend = execution().backend;
  switch (datapath) {
    case Datapath::unspecified:
      request.datapath = exec::PlanDatapath::unspecified;
      break;
    case Datapath::float32:
      request.datapath = exec::PlanDatapath::float32;
      break;
    case Datapath::fixed_point:
      request.datapath = exec::PlanDatapath::fixed_point;
      break;
  }
  request.threads = threads;
  request.fixed = fixed;
  return exec::Planner::global().plan(request, kernel());
}

exec::PipelineExecutor PipelineOptions::make_executor(int width,
                                                      int height) const {
  return plan(width, height).make_executor();
}

exec::PipelineExecutor PipelineOptions::make_executor() const {
  return make_executor(1024, 768);
}

namespace stages {

namespace {

void require_dst_shape(const img::ImageF& dst, int width, int height,
                       int channels, const char* stage) {
  TMHLS_REQUIRE(dst.width() == width && dst.height() == height &&
                    dst.channels() == channels,
                std::string(stage) + "_into: destination must be " +
                    std::to_string(width) + "x" + std::to_string(height) +
                    "x" + std::to_string(channels));
}

} // namespace

void normalize_into(const img::ImageF& hdr, const PipelineOptions& opt,
                    img::ImageF& dst, float* applied_scale) {
  TMHLS_REQUIRE(!hdr.empty(), "normalize: empty image");
  require_dst_shape(dst, hdr.width(), hdr.height(), hdr.channels(),
                    "normalize");
  const auto si = hdr.samples();
  const auto so = dst.samples();
  float scale = 0.0f;
  if (opt.normalization_scale > 0.0f) {
    scale = opt.normalization_scale;
    normalize_scale_row(si.data(), so.data(), si.size(), scale);
  } else {
    // normalize_to_max's scan + row op, writing into dst instead of a
    // fresh plane (same REQUIRE, same arithmetic — bit-identical).
    for (const float v : si) scale = std::max(scale, v);
    TMHLS_REQUIRE(scale > 0.0f,
                  "normalize_to_max: image has no positive sample");
    normalize_max_row(si.data(), so.data(), si.size(), scale);
  }
  if (opt.display_gamma != 1.0f) {
    TMHLS_REQUIRE(opt.display_gamma > 0.0f,
                  "display_encode: gamma must be positive");
    // The row ops allow in == out; encode dst in place.
    display_encode_row(so.data(), so.data(), so.size(),
                       1.0f / opt.display_gamma);
  }
  if (applied_scale != nullptr) *applied_scale = scale;
}

void intensity_into(const img::ImageF& normalized, img::ImageF& dst) {
  TMHLS_REQUIRE(normalized.channels() == 1 || normalized.channels() >= 3,
                "luminance needs 1 or >=3 channels");
  require_dst_shape(dst, normalized.width(), normalized.height(), 1,
                    "intensity");
  for (int y = 0; y < normalized.height(); ++y) {
    img::luminance_row(&normalized.at_unchecked(0, y), &dst.at_unchecked(0, y),
                       normalized.width(), normalized.channels());
  }
}

void mask_into(const img::ImageF& intensity, const GaussianKernel& kernel,
               const exec::PipelineExecutor& executor, img::ImageF& dst) {
  require_dst_shape(dst, intensity.width(), intensity.height(), 1, "mask");
  dst = executor.blur(intensity, kernel);
}

void masking_into(const img::ImageF& normalized, const img::ImageF& mask,
                  img::ImageF& dst) {
  TMHLS_REQUIRE(mask.channels() == 1,
                "nonlinear_masking: mask must be 1-channel");
  TMHLS_REQUIRE(normalized.width() == mask.width() &&
                    normalized.height() == mask.height(),
                "nonlinear_masking: size mismatch");
  require_dst_shape(dst, normalized.width(), normalized.height(),
                    normalized.channels(), "masking");
  for (int y = 0; y < normalized.height(); ++y) {
    masking_row(&normalized.at_unchecked(0, y), &mask.at_unchecked(0, y),
                &dst.at_unchecked(0, y), normalized.width(),
                normalized.channels());
  }
}

void adjust_into(const img::ImageF& masked, const PipelineOptions& opt,
                 img::ImageF& dst) {
  TMHLS_REQUIRE(opt.contrast > 0.0f,
                "brightness_contrast: contrast must be > 0");
  require_dst_shape(dst, masked.width(), masked.height(), masked.channels(),
                    "adjust");
  const auto si = masked.samples();
  brightness_contrast_row(si.data(), dst.samples().data(), si.size(),
                          opt.brightness, opt.contrast);
}

img::ImageF normalize(const img::ImageF& hdr, const PipelineOptions& opt,
                      float* applied_scale) {
  TMHLS_REQUIRE(!hdr.empty(), "normalize: empty image");
  img::ImageF normalized(hdr.width(), hdr.height(), hdr.channels());
  normalize_into(hdr, opt, normalized, applied_scale);
  return normalized;
}

img::ImageF intensity(const img::ImageF& normalized) {
  img::ImageF out(normalized.width(), normalized.height(), 1);
  intensity_into(normalized, out);
  return out;
}

img::ImageF mask(const img::ImageF& intensity, const GaussianKernel& kernel,
                 const exec::PipelineExecutor& executor) {
  return executor.blur(intensity, kernel);
}

img::ImageF masking(const img::ImageF& normalized, const img::ImageF& mask) {
  img::ImageF out(normalized.width(), normalized.height(),
                  normalized.channels());
  masking_into(normalized, mask, out);
  return out;
}

img::ImageF adjust(const img::ImageF& masked, const PipelineOptions& opt) {
  img::ImageF out(masked.width(), masked.height(), masked.channels());
  adjust_into(masked, opt, out);
  return out;
}

} // namespace stages

PipelineResult tone_map(const img::ImageF& hdr, const PipelineOptions& opt) {
  TMHLS_REQUIRE(!hdr.empty(), "tone_map: empty image");
  return tone_map(hdr, opt, opt.make_executor(hdr.width(), hdr.height()));
}

PipelineResult tone_map(const img::ImageF& hdr, const PipelineOptions& opt,
                        const exec::PipelineExecutor& executor) {
  TMHLS_REQUIRE(!hdr.empty(), "tone_map: empty image");
  const GaussianKernel kernel = opt.kernel();

  PipelineResult r;
  r.normalized = stages::normalize(hdr, opt, &r.input_max);
  r.intensity = stages::intensity(r.normalized);
  r.mask = stages::mask(r.intensity, kernel, executor);
  r.masked = stages::masking(r.normalized, r.mask);
  r.output = stages::adjust(r.masked, opt);
  return r;
}

img::ImageF tone_map_image(const img::ImageF& hdr,
                           const PipelineOptions& opt) {
  // Only the final image is wanted here, so the fused_stream selection can
  // run the whole five-stage pipeline in one streaming pass instead of
  // materializing the PipelineResult intermediates. Bit-identical output
  // (the fused engine reuses the stage/pass primitives verbatim).
  const ExecutionSelection sel = opt.execution();
  if (sel.backend == "fused_stream" && !sel.use_fixed) {
    return tone_map_fused(hdr, opt).output;
  }
  return tone_map(hdr, opt).output;
}

} // namespace tmhls::tonemap
