#include "tonemap/pipeline.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"

namespace tmhls::tonemap {

const char* to_string(BlurKind kind) {
  switch (kind) {
    case BlurKind::separable_float: return "separable_float";
    case BlurKind::streaming_float: return "streaming_float";
    case BlurKind::streaming_fixed: return "streaming_fixed";
  }
  return "?";
}

GaussianKernel PipelineOptions::kernel() const {
  if (radius > 0) return GaussianKernel(sigma, radius);
  return GaussianKernel(sigma);
}

PipelineResult tone_map(const img::ImageF& hdr, const PipelineOptions& opt) {
  TMHLS_REQUIRE(!hdr.empty(), "tone_map: empty image");
  const GaussianKernel kernel = opt.kernel();

  PipelineResult r;
  if (opt.normalization_scale > 0.0f) {
    r.input_max = opt.normalization_scale;
    r.normalized = img::ImageF(hdr.width(), hdr.height(), hdr.channels());
    auto si = hdr.samples();
    auto so = r.normalized.samples();
    for (std::size_t i = 0; i < si.size(); ++i) {
      so[i] = clamp(si[i] / opt.normalization_scale, 0.0f, 1.0f);
    }
  } else {
    r.normalized = normalize_to_max(hdr, &r.input_max);
  }
  if (opt.display_gamma != 1.0f) {
    r.normalized = display_encode(r.normalized, opt.display_gamma);
  }
  r.intensity = img::luminance(r.normalized);

  switch (opt.blur) {
    case BlurKind::separable_float:
      r.mask = blur_separable_float(r.intensity, kernel);
      break;
    case BlurKind::streaming_float:
      r.mask = blur_streaming_float(r.intensity, kernel);
      break;
    case BlurKind::streaming_fixed:
      r.mask = blur_streaming_fixed(r.intensity, kernel, opt.fixed);
      break;
  }

  r.masked = nonlinear_masking(r.normalized, r.mask);
  r.output = brightness_contrast(r.masked, opt.brightness, opt.contrast);
  return r;
}

img::ImageF tone_map_image(const img::ImageF& hdr,
                           const PipelineOptions& opt) {
  return tone_map(hdr, opt).output;
}

} // namespace tmhls::tonemap
