#include "tonemap/pipeline.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"
#include "tonemap/fused_stream.hpp"

namespace tmhls::tonemap {

const char* to_string(BlurKind kind) {
  switch (kind) {
    case BlurKind::separable_float: return "separable_float";
    case BlurKind::streaming_float: return "streaming_float";
    case BlurKind::streaming_fixed: return "streaming_fixed";
  }
  return "?";
}

const char* backend_name(BlurKind kind) {
  // The three golden datapaths are registered under their enum names.
  return to_string(kind);
}

const char* to_string(Datapath datapath) {
  switch (datapath) {
    case Datapath::from_blur_kind: return "from_blur_kind";
    case Datapath::float32: return "float";
    case Datapath::fixed_point: return "fixed";
  }
  return "?";
}

Datapath datapath_from_string(const std::string& name) {
  if (name == "float" || name == "float32") return Datapath::float32;
  if (name == "fixed" || name == "fixed_point") return Datapath::fixed_point;
  throw InvalidArgument("unknown datapath: " + name +
                        " (expected float or fixed)");
}

GaussianKernel PipelineOptions::kernel() const {
  if (radius > 0) return GaussianKernel(sigma, radius);
  return GaussianKernel(sigma);
}

ExecutionSelection PipelineOptions::execution() const {
  ExecutionSelection s;
  s.backend = backend.empty() ? backend_name(blur) : backend;
  switch (datapath) {
    case Datapath::float32: s.use_fixed = false; break;
    case Datapath::fixed_point: s.use_fixed = true; break;
    case Datapath::from_blur_kind:
      s.use_fixed = (blur == BlurKind::streaming_fixed);
      break;
  }
  return s;
}

exec::PipelineExecutor PipelineOptions::make_executor(int width,
                                                      int height) const {
  const ExecutionSelection selection = execution();
  exec::ExecutorOptions eo;
  eo.threads = threads;
  eo.fixed = fixed;
  eo.use_fixed = selection.use_fixed;
  if (selection.backend == "auto") {
    return exec::PipelineExecutor(
        exec::select_auto_backend(width, height, kernel(), eo), eo);
  }
  const auto resolved =
      exec::BackendRegistry::global().resolve(selection.backend);
  const exec::BackendCapabilities caps = resolved->capabilities();
  // Asking a float-only backend for the fixed datapath would otherwise be
  // silently ignored (e.g. `--fixed --backend streaming_float`).
  TMHLS_REQUIRE(!eo.use_fixed || caps.fixed_datapath,
                "backend " + selection.backend +
                    " has no fixed-point datapath; drop the fixed-point "
                    "request or choose streaming_fixed / hlscode");
  if (!eo.use_fixed && !caps.float_datapath) {
    // Fixed-only backend named explicitly: an unspecified datapath
    // follows the backend's only datapath (so `--backend streaming_fixed`
    // alone just works, at any pipeline depth), while an explicit float
    // request is a contradiction — quantised output for a float ask.
    TMHLS_REQUIRE(datapath != Datapath::float32,
                  "backend " + selection.backend +
                      " has no float datapath; drop the float request or "
                      "choose a float-capable backend");
    eo.use_fixed = true;
  }
  return exec::PipelineExecutor(resolved, eo);
}

exec::PipelineExecutor PipelineOptions::make_executor() const {
  return make_executor(1024, 768);
}

namespace stages {

img::ImageF normalize(const img::ImageF& hdr, const PipelineOptions& opt,
                      float* applied_scale) {
  TMHLS_REQUIRE(!hdr.empty(), "normalize: empty image");
  img::ImageF normalized;
  float scale = 0.0f;
  if (opt.normalization_scale > 0.0f) {
    scale = opt.normalization_scale;
    normalized = img::ImageF(hdr.width(), hdr.height(), hdr.channels());
    auto si = hdr.samples();
    auto so = normalized.samples();
    for (std::size_t i = 0; i < si.size(); ++i) {
      so[i] = clamp(si[i] / opt.normalization_scale, 0.0f, 1.0f);
    }
  } else {
    normalized = normalize_to_max(hdr, &scale);
  }
  if (opt.display_gamma != 1.0f) {
    normalized = display_encode(normalized, opt.display_gamma);
  }
  if (applied_scale != nullptr) *applied_scale = scale;
  return normalized;
}

img::ImageF intensity(const img::ImageF& normalized) {
  return img::luminance(normalized);
}

img::ImageF mask(const img::ImageF& intensity, const GaussianKernel& kernel,
                 const exec::PipelineExecutor& executor) {
  return executor.blur(intensity, kernel);
}

img::ImageF masking(const img::ImageF& normalized, const img::ImageF& mask) {
  return nonlinear_masking(normalized, mask);
}

img::ImageF adjust(const img::ImageF& masked, const PipelineOptions& opt) {
  return brightness_contrast(masked, opt.brightness, opt.contrast);
}

} // namespace stages

PipelineResult tone_map(const img::ImageF& hdr, const PipelineOptions& opt) {
  TMHLS_REQUIRE(!hdr.empty(), "tone_map: empty image");
  return tone_map(hdr, opt, opt.make_executor(hdr.width(), hdr.height()));
}

PipelineResult tone_map(const img::ImageF& hdr, const PipelineOptions& opt,
                        const exec::PipelineExecutor& executor) {
  TMHLS_REQUIRE(!hdr.empty(), "tone_map: empty image");
  const GaussianKernel kernel = opt.kernel();

  PipelineResult r;
  r.normalized = stages::normalize(hdr, opt, &r.input_max);
  r.intensity = stages::intensity(r.normalized);
  r.mask = stages::mask(r.intensity, kernel, executor);
  r.masked = stages::masking(r.normalized, r.mask);
  r.output = stages::adjust(r.masked, opt);
  return r;
}

img::ImageF tone_map_image(const img::ImageF& hdr,
                           const PipelineOptions& opt) {
  // Only the final image is wanted here, so the fused_stream selection can
  // run the whole five-stage pipeline in one streaming pass instead of
  // materializing the PipelineResult intermediates. Bit-identical output
  // (the fused engine reuses the stage/pass primitives verbatim).
  const ExecutionSelection sel = opt.execution();
  if (sel.backend == "fused_stream" && !sel.use_fixed) {
    return tone_map_fused(hdr, opt).output;
  }
  return tone_map(hdr, opt).output;
}

} // namespace tmhls::tonemap
