// FramePipeline: the pipelined frame scheduler — the host-side analogue of
// the paper's DMA/compute overlap. A session object whose submit(frame) /
// next_result() API runs the point-wise PS stages (normalize, intensity,
// masking, adjust) of frame N+1 on the caller's thread while frame N's
// mask blur is in flight on an exec::AsyncExecutor worker:
//
//   frame N   |--norm+int--|--------- mask blur ---------|--mask+adj--|
//   frame N+1              |--norm+int--|   (caller)     ...
//                           ^ overlaps the blur of frame N
//
// Output is bit-identical to the blocking tone_map() at every depth (the
// same stage functions run in the same per-frame order; only frames
// interleave), and results come back in submission order. Depth 1 runs
// every stage synchronously in submit() — exactly today's behaviour, no
// worker thread at all.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>

#include "exec/async.hpp"
#include "exec/executor.hpp"
#include "image/image.hpp"
#include "tonemap/pipeline.hpp"

namespace tmhls::tonemap {

/// Configuration of a FramePipeline session.
struct FramePipelineOptions {
  /// Per-frame pipeline configuration; backend/threads resolve the
  /// executor once at construction (geometry-free, like VideoToneMapper).
  PipelineOptions pipeline;
  /// Maximum frames in flight. 1 == fully synchronous (the blocking
  /// tone_map() behaviour); 2 (the default) overlaps frame N's blur with
  /// frame N+1's point-wise stages. Deeper only pays when the blur
  /// backend leaves cores idle. Must be >= 1.
  int depth = 2;
  /// Frame geometry the executor is resolved for — what backend == "auto"
  /// ranks the cost model on. Callers that know their frame size should
  /// set it (the CLI does), so the auto choice — and therefore the output
  /// bits — cannot differ between the blocking and the pipelined path.
  int width = 1024;
  int height = 768;
  /// Retain every PipelineResult plane in results. Off (the default) the
  /// session clears the intermediate artefacts (normalized, intensity,
  /// mask, masked) when a frame retires, so queued results hold only the
  /// output plane — a streaming consumer at depth D would otherwise pin
  /// ~4x the memory per pending frame. Turn on to inspect artefacts.
  bool keep_intermediates = false;
};

/// Validation of FramePipelineOptions: throws InvalidArgument naming the
/// offending field unless depth >= 1.
void validate(const FramePipelineOptions& options);

/// A stateful frame-pipelining session over the tone-mapping stages.
///
/// Usage (streaming, depth D):
///   FramePipeline pipe(options);
///   for (frame : frames) {
///     pipe.submit(frame);            // point-wise stages run here
///     while (pipe.has_ready()) consume(pipe.next_result());
///   }
///   while (pipe.pending() > 0) consume(pipe.next_result());
///
/// Alternating submit()/next_result() is also valid at any depth and
/// yields the blocking behaviour frame by frame. Not thread-safe: one
/// session serves one producer/consumer thread; for concurrent producers
/// put a session per worker behind a queue, which is exactly what
/// serve::ToneMapService does.
class FramePipeline {
public:
  explicit FramePipeline(FramePipelineOptions options);
  /// Completes any in-flight blur work (results are discarded).
  ~FramePipeline();

  FramePipeline(const FramePipeline&) = delete;
  FramePipeline& operator=(const FramePipeline&) = delete;

  /// Enqueue a frame. Runs the point-wise front stages on the calling
  /// thread, hands the mask blur to the async executor, and — when
  /// `depth` frames are already in flight — first retires the oldest one
  /// (its back stages also run here, overlapping the in-flight blurs).
  void submit(const img::ImageF& frame);

  /// As above with a per-frame normalisation scale overriding
  /// options.pipeline.normalization_scale — the hook VideoToneMapper's
  /// temporal adaptation feeds.
  void submit(const img::ImageF& frame, float normalization_scale);

  /// The oldest unconsumed frame's result, in submission order. Blocks on
  /// its mask blur if still in flight; throws InvalidArgument when no
  /// frame is pending.
  ///
  /// Error contract: if a frame's blur fails at runtime (capability
  /// errors are already rejected at construction), its exception is
  /// rethrown from whichever call retires it — this one, or a submit()
  /// that had to retire it to respect the depth bound. The failed frame
  /// is dropped; subsequent frames continue in submission order.
  PipelineResult next_result();

  /// Frames submitted but not yet consumed through next_result().
  std::size_t pending() const { return ready_.size() + in_flight_.size(); }

  /// True when a result can be consumed without blocking on a blur.
  bool has_ready() const { return !ready_.empty(); }

  int depth() const { return options_.depth; }
  const FramePipelineOptions& options() const { return options_; }

  /// True when frames run as one fused streaming sweep (tone_map_fused)
  /// instead of the staged composition: depth 1, intermediates not kept,
  /// and the resolved backend is fused_stream on its float datapath.
  /// Observable for tests; the output bits are identical either way.
  bool fused_route() const { return use_fused_; }

  /// Session-reuse hook for serving layers: true when a job carrying
  /// `pipeline` options and `width` x `height` frames would produce
  /// bit-identical results through this session as through a session
  /// freshly built for it. That holds when the pipeline options match
  /// field-for-field and — only when the backend resolves to "auto",
  /// whose choice depends on frame geometry — the configured geometry
  /// matches too (named backends serve any geometry). Auto sessions
  /// additionally re-plan when the cost model's revision moved since this
  /// session planned (online observations arrived): if the fresh plan
  /// would pick a different backend/threads/bands, the answer is false
  /// and the caller rebuilds onto the better schedule — this is how
  /// serving converges onto the measured-fastest backend under load. A
  /// false answer is always safe: it costs the caller a session rebuild,
  /// never identity (plans choose scheduling, never bits).
  bool compatible_with(const PipelineOptions& pipeline, int width,
                       int height) const;

  /// The plan this session resolved at construction.
  const exec::ExecutionPlan& plan() const { return plan_; }

  /// The synchronous executor configuration the mask stage runs on (the
  /// async worker holds its own copy of it at depth > 1).
  const exec::PipelineExecutor& executor() const { return executor_; }

private:
  struct InFlight {
    PipelineResult result; ///< front stages filled; mask pending
    std::future<img::ImageF> mask;
  };

  void submit_with_scale(const img::ImageF& frame, float scale);
  /// Wait for the oldest in-flight frame's mask, run its back stages,
  /// move it to the ready queue.
  void retire_oldest();
  /// Drop the non-output planes unless keep_intermediates is set.
  void release_intermediates(PipelineResult& r) const;

  FramePipelineOptions options_;
  GaussianKernel kernel_;
  exec::ExecutionPlan plan_;
  exec::PipelineExecutor executor_;
  /// CostModel::revision() the session last planned against — bumped by
  /// compatible_with when a re-plan confirms the same schedule, so the
  /// next call short-circuits. Atomic only so concurrent readers of an
  /// otherwise-idle session (stats paths) stay race-free.
  mutable std::atomic<std::uint64_t> planned_revision_{0};
  bool use_fused_ = false; ///< see fused_route()
  std::unique_ptr<exec::AsyncExecutor> async_; ///< null at depth 1
  std::deque<InFlight> in_flight_;
  std::deque<PipelineResult> ready_;
};

} // namespace tmhls::tonemap
