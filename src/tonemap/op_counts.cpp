#include "tonemap/op_counts.hpp"

#include "common/error.hpp"

namespace tmhls::tonemap {

OpCounts& OpCounts::operator+=(const OpCounts& o) {
  loads += o.loads;
  stores += o.stores;
  fadd += o.fadd;
  fmul += o.fmul;
  fdiv += o.fdiv;
  fcmp += o.fcmp;
  pow_calls += o.pow_calls;
  exp2_calls += o.exp2_calls;
  log_calls += o.log_calls;
  loop_iters += o.loop_iters;
  return *this;
}

const char* to_string(Stage s) {
  switch (s) {
    case Stage::normalization: return "normalization";
    case Stage::intensity: return "intensity";
    case Stage::gaussian_blur: return "gaussian_blur";
    case Stage::nonlinear_masking: return "nonlinear_masking";
    case Stage::adjustments: return "adjustments";
  }
  return "?";
}

namespace {
std::int64_t samples_of(int width, int height, int channels) {
  return static_cast<std::int64_t>(width) * height * channels;
}
} // namespace

OpCounts count_normalization(int width, int height, int channels) {
  const std::int64_t n = samples_of(width, height, channels);
  OpCounts c;
  // Pass 1: max reduction (load + compare per sample).
  c.loads += n;
  c.fcmp += n;
  // Pass 2: divide + store per sample.
  c.loads += n;
  c.fdiv += n;
  c.stores += n;
  // Pass 3: display encoding, pow per sample (Moroney masking operates on
  // display-referred data).
  c.loads += n;
  c.fcmp += n;
  c.pow_calls += n;
  c.stores += n;
  c.loop_iters += 3 * n;
  return c;
}

OpCounts count_intensity(int width, int height, int channels) {
  const std::int64_t px = static_cast<std::int64_t>(width) * height;
  OpCounts c;
  if (channels == 1) {
    // Plain copy.
    c.loads = px;
    c.stores = px;
    c.loop_iters = px;
    return c;
  }
  // 3 loads, 3 muls, 2 adds, 1 store per pixel.
  c.loads = 3 * px;
  c.fmul = 3 * px;
  c.fadd = 2 * px;
  c.stores = px;
  c.loop_iters = px;
  return c;
}

OpCounts count_gaussian_blur(int width, int height,
                             const GaussianKernel& kernel) {
  const std::int64_t px = static_cast<std::int64_t>(width) * height;
  const std::int64_t taps = kernel.taps();
  OpCounts c;
  // Two separable passes over the 1-channel plane.
  c.loads = 2 * px * taps;
  c.fmul = 2 * px * taps;
  c.fadd = 2 * px * (taps - 1);
  c.stores = 2 * px;
  c.loop_iters = 2 * px * taps;
  return c;
}

OpCounts count_nonlinear_masking(int width, int height, int channels) {
  const std::int64_t px = static_cast<std::int64_t>(width) * height;
  const std::int64_t n = samples_of(width, height, channels);
  OpCounts c;
  // Per pixel: load mask, clamp, exponent via exp2.
  c.loads += px;
  c.fcmp += 2 * px;
  c.fadd += px;  // (m - 0.5)
  c.fmul += px;  // / 0.5 as * 2
  c.exp2_calls += px;
  // Per sample: load, max(0), pow, store.
  c.loads += n;
  c.fcmp += n;
  c.pow_calls += n;
  c.stores += n;
  c.loop_iters += px + n;
  return c;
}

OpCounts count_adjustments(int width, int height, int channels) {
  const std::int64_t n = samples_of(width, height, channels);
  OpCounts c;
  c.loads = n;
  c.fadd = 2 * n; // -0.5, +0.5+brightness
  c.fmul = n;     // *contrast
  c.fcmp = 2 * n; // clamp
  c.stores = n;
  c.loop_iters = n;
  return c;
}

OpCounts count_stage(Stage stage, int width, int height, int channels,
                     const GaussianKernel& kernel) {
  switch (stage) {
    case Stage::normalization:
      return count_normalization(width, height, channels);
    case Stage::intensity:
      return count_intensity(width, height, channels);
    case Stage::gaussian_blur:
      return count_gaussian_blur(width, height, kernel);
    case Stage::nonlinear_masking:
      return count_nonlinear_masking(width, height, channels);
    case Stage::adjustments:
      return count_adjustments(width, height, channels);
  }
  throw InvalidArgument("unknown stage");
}

} // namespace tmhls::tonemap
