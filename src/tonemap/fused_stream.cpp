#include "tonemap/fused_stream.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "exec/tiled.hpp"
#include "tonemap/blur_passes.hpp"

namespace tmhls::tonemap {

namespace {

using detail::clamp_index;

/// The line buffer of the fused engine: a ring of `taps` horizontally
/// blurred rows. The slot of absolute source row ry is ry % taps — any
/// output row's vertical window spans a contiguous clamped row range of at
/// most `taps` rows, so the rows a window reads never collide in the ring,
/// and a row streamed in overwrites exactly the one that just left every
/// window. This is the §III.B circular line buffer with the modulo made
/// explicit (the hardware keeps a rotating head index instead; same rows,
/// same values).
class LineBuffer {
public:
  LineBuffer(int width, int taps)
      : width_(width), taps_(taps),
        rows_(static_cast<std::size_t>(width) *
              static_cast<std::size_t>(taps)) {}

  float* slot(int source_row) {
    return rows_.data() + static_cast<std::size_t>(source_row % taps_) *
                              static_cast<std::size_t>(width_);
  }
  const float* slot(int source_row) const {
    return rows_.data() + static_cast<std::size_t>(source_row % taps_) *
                              static_cast<std::size_t>(width_);
  }

  /// Per-tap row pointers of output row y's vertical window, clamp-to-edge
  /// over `height` source rows — the hoisted vertical clamp, exactly as the
  /// row-range vertical pass builds it.
  void window(int y, int radius, int height,
              std::vector<const float*>& out) const {
    for (int i = 0; i < static_cast<int>(out.size()); ++i) {
      out[static_cast<std::size_t>(i)] =
          slot(clamp_index(y - radius + i, height));
    }
  }

private:
  int width_;
  int taps_;
  std::vector<float> rows_;
};

/// Blur-only band worker: output rows [rb, re), streaming source rows
/// through the line buffer. Bands only read `src` and write their own
/// `dst` rows, so bands are fully independent (halo rows are re-blurred
/// locally during priming).
void fused_blur_band(const img::ImageF& src, img::ImageF& dst,
                     const GaussianKernel& kernel, int rb, int re) {
  const int w = src.width();
  const int h = src.height();
  const int radius = kernel.radius();
  const int taps = kernel.taps();
  const float* wts = kernel.weights().data();

  LineBuffer lines(w, taps);
  std::vector<const float*> window(static_cast<std::size_t>(taps));

  // Prime: horizontally blur every source row the first output row's
  // window reads (the band's top halo), then per output row stream in the
  // one new source row its window adds (none while draining at the bottom
  // edge, where the clamp holds the last row).
  int next = std::max(0, rb - radius);
  auto consume_to = [&](int last) {
    for (; next <= last; ++next) {
      hpass_float_row_simd(&src.at_unchecked(0, next), lines.slot(next), wts,
                           taps, radius, w);
    }
  };
  consume_to(std::min(h - 1, rb + radius - 1));
  for (int y = rb; y < re; ++y) {
    consume_to(std::min(h - 1, y + radius));
    lines.window(y, radius, h, window);
    vpass_float_row_simd(window.data(), &dst.at_unchecked(0, y), wts, taps,
                         w);
  }
}

/// Full-pipeline band worker: as fused_blur_band, but each streamed source
/// row additionally runs the point-wise front stages (normalize + encode,
/// luminance) before entering the line buffer, and each emitted row runs
/// the back stages (masking, adjust) after the vertical pass. The
/// normalized rows still inside the masking window live in their own
/// radius+1-row ring: the window [y, y + radius] is always the most
/// recently streamed radius+1 rows, so ascending streaming order keeps
/// exactly the live ones resident.
void fused_tonemap_band(const img::ImageF& hdr, img::ImageF& dst,
                        const PipelineOptions& opt,
                        const GaussianKernel& kernel, float scale, int rb,
                        int re) {
  const int w = hdr.width();
  const int h = hdr.height();
  const int c = hdr.channels();
  const int radius = kernel.radius();
  const int taps = kernel.taps();
  const float* wts = kernel.weights().data();
  const bool by_max = !(opt.normalization_scale > 0.0f);
  const bool encode = opt.display_gamma != 1.0f;
  const float inv_gamma = 1.0f / opt.display_gamma;
  const std::size_t row_samples =
      static_cast<std::size_t>(w) * static_cast<std::size_t>(c);

  const int norm_rows = radius + 1;
  std::vector<float> norm_ring(static_cast<std::size_t>(norm_rows) *
                               row_samples);
  auto norm_slot = [&](int ny) {
    return norm_ring.data() +
           static_cast<std::size_t>(ny % norm_rows) * row_samples;
  };

  LineBuffer lines(w, taps);
  std::vector<const float*> window(static_cast<std::size_t>(taps));
  std::vector<float> intensity_row(static_cast<std::size_t>(w));
  std::vector<float> mask_row(static_cast<std::size_t>(w));

  int next = std::max(0, rb - radius);
  auto consume_to = [&](int last) {
    for (; next <= last; ++next) {
      const float* src_row = &hdr.at_unchecked(0, next);
      float* nrow = norm_slot(next);
      if (by_max) {
        normalize_max_row(src_row, nrow, row_samples, scale);
      } else {
        normalize_scale_row(src_row, nrow, row_samples, scale);
      }
      if (encode) display_encode_row(nrow, nrow, row_samples, inv_gamma);
      img::luminance_row(nrow, intensity_row.data(), w, c);
      hpass_float_row_simd(intensity_row.data(), lines.slot(next), wts, taps,
                           radius, w);
    }
  };
  consume_to(std::min(h - 1, rb + radius - 1));
  for (int y = rb; y < re; ++y) {
    consume_to(std::min(h - 1, y + radius));
    lines.window(y, radius, h, window);
    vpass_float_row_simd(window.data(), mask_row.data(), wts, taps, w);
    float* out = &dst.at_unchecked(0, y);
    masking_row(norm_slot(y), mask_row.data(), out, w, c);
    brightness_contrast_row(out, out, row_samples, opt.brightness,
                            opt.contrast);
  }
}

int clamp_bands(int threads, int rows) {
  TMHLS_REQUIRE(threads >= 1, "fused stream: threads must be >= 1");
  return std::min({threads, rows, exec::kMaxTiledBands});
}

} // namespace

img::ImageF blur_fused_stream(const img::ImageF& src,
                              const GaussianKernel& kernel, int threads) {
  TMHLS_REQUIRE(src.channels() == 1, "blur expects a 1-channel image");
  const int h = src.height();
  const int bands = clamp_bands(threads, h);

  img::ImageF dst(src.width(), h, 1);
  const bool parallel_ok =
      bands > 1 && exec::run_independent_bands(bands, [&](int band) {
        const exec::RowBand r = exec::row_band(h, bands, band);
        fused_blur_band(src, dst, kernel, r.begin, r.end);
      });
  if (!parallel_ok) fused_blur_band(src, dst, kernel, 0, h);
  return dst;
}

FusedToneMapResult tone_map_fused(const img::ImageF& hdr,
                                  const PipelineOptions& opt) {
  TMHLS_REQUIRE(!hdr.empty(), "tone_map_fused: empty image");
  // The stage preconditions the plane-at-a-time pipeline checks inside its
  // stage functions, checked up front here (the fused loop interleaves the
  // stages, so a mid-stream throw would be a half-written frame).
  TMHLS_REQUIRE(hdr.channels() == 1 || hdr.channels() >= 3,
                "luminance needs 1 or >=3 channels");
  TMHLS_REQUIRE(opt.display_gamma == 1.0f || opt.display_gamma > 0.0f,
                "display_encode: gamma must be positive");
  TMHLS_REQUIRE(opt.contrast > 0.0f, "brightness_contrast: contrast must be > 0");
  const GaussianKernel kernel = opt.kernel();
  const int h = hdr.height();
  const int bands = clamp_bands(opt.threads, h);

  // The one inherently two-pass part: frame-max normalisation must see
  // every sample before the first row can be normalized. Same reduction as
  // normalize_to_max (max is order-insensitive, so one pass over samples).
  float scale = opt.normalization_scale;
  if (!(scale > 0.0f)) {
    float max_v = 0.0f;
    for (float v : hdr.samples()) max_v = std::max(max_v, v);
    TMHLS_REQUIRE(max_v > 0.0f,
                  "normalize_to_max: image has no positive sample");
    scale = max_v;
  }

  FusedToneMapResult result;
  result.input_max = scale;
  result.output = img::ImageF(hdr.width(), h, hdr.channels());
  img::ImageF& dst = result.output;
  const bool parallel_ok =
      bands > 1 && exec::run_independent_bands(bands, [&](int band) {
        const exec::RowBand r = exec::row_band(h, bands, band);
        fused_tonemap_band(hdr, dst, opt, kernel, scale, r.begin, r.end);
      });
  if (!parallel_ok) fused_tonemap_band(hdr, dst, opt, kernel, scale, 0, h);
  return result;
}

} // namespace tmhls::tonemap
