// Gaussian convolution kernels for the separable blur (§II.A step 2).
//
// "The number of adjacent pixels and the weights of the multiplications are
// determined by width and magnitude of a Gaussian distribution." The kernel
// is one-dimensional because the 2D Gaussian is separable into a horizontal
// and a vertical pass.
#pragma once

#include <cstdint>
#include <vector>

#include "fixed/fixed_format.hpp"

namespace tmhls::tonemap {

/// A normalised 1D Gaussian kernel: weights[radius + k] for k in
/// [-radius, radius], summing to 1.
class GaussianKernel {
public:
  /// Build from a standard deviation; radius defaults to ceil(3*sigma),
  /// covering 99.7% of the distribution's mass.
  explicit GaussianKernel(double sigma);

  /// Build with an explicit radius (taps = 2*radius + 1).
  GaussianKernel(double sigma, int radius);

  double sigma() const { return sigma_; }
  int radius() const { return radius_; }
  /// Number of taps, 2*radius + 1.
  int taps() const { return static_cast<int>(weights_.size()); }

  /// Normalised float weights (sum exactly renormalised to 1 in double).
  const std::vector<float>& weights() const { return weights_; }

  /// Weight at offset k in [-radius, radius].
  float weight(int k) const;

  /// Kernel weights quantised into a fixed-point format, as raw integer
  /// patterns — what the hardware datapath ROM would hold. Tail weights
  /// may quantise to zero for narrow formats; that loss is part of the
  /// fixed-point accuracy trade-off being measured.
  std::vector<std::int64_t> quantised_weights(
      const fixed::FixedFormat& fmt) const;

  /// Sum of the quantised weights, as a real value (ideally close to 1).
  double quantised_weight_sum(const fixed::FixedFormat& fmt) const;

private:
  double sigma_;
  int radius_;
  std::vector<float> weights_;
};

} // namespace tmhls::tonemap
