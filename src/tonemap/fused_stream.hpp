// The fused sliding-window tone-map engine — the host-side mirror of the
// paper's HLS dataflow pipeline, where pixels stream through every stage
// without intermediate planes ever being materialized in DRAM (§III.B:
// "local data buffers using memory blocks inside the FPGA"). Two entry
// points:
//
//   blur_fused_stream() — the mask blur alone as one sliding-window pass:
//       a ring buffer of `taps` horizontally blurred rows (the line
//       buffer) is filled as input rows arrive, and once a row's vertical
//       window is resident the vertical pass emits the finished output
//       row. No full-frame intermediate plane exists; the working set is
//       taps x width floats (the BRAM line buffer, on the host's cache).
//       This is what the registered `fused_stream` execution backend runs.
//
//   tone_map_fused() — the whole five-stage pipeline (normalize ->
//       intensity -> mask blur -> masking -> adjust) in one pass per
//       frame: each input row is normalized, display-encoded, reduced to
//       its luminance, horizontally blurred into the line buffer, and as
//       soon as an output row's blur window is complete the vertical pass
//       + masking + adjustment emit it. Only the normalized rows still
//       inside the masking window (radius + 1 of them) and the blur line
//       buffer are retained — the plane-at-a-time pipeline touches every
//       pixel ~7 times through DRAM-sized planes; this touches the input
//       and output once each.
//
// Bit-identity: both forms reuse the row primitives of blur_passes (same
// ascending-tap accumulation, same border split, SIMD vectorized across
// pixels) and the row-span stage helpers of operators/image, so every
// sample goes through the identical floating-point operation sequence as
// the plane-at-a-time reference — the output is blur_separable_float's /
// tone_map()'s bit for bit, at every thread count.
//
// Multi-threading: row-band decomposition like exec's tiled mode, but with
// no inter-band halo exchange — each band primes its own line buffer with
// up to `radius` halo rows beyond its edges (recomputing their horizontal
// blur, the overlapped-tiling trade the Halide/HWTool line of work makes
// for the same reason: recomputation is cheaper than synchronising
// intermediate state). Bands are fully independent, so bit-identity across
// thread counts is by construction rather than by barrier discipline.
#pragma once

#include "image/image.hpp"
#include "tonemap/kernel.hpp"
#include "tonemap/pipeline.hpp"

namespace tmhls::tonemap {

/// Fused sliding-window Gaussian blur of a 1-channel plane; bit-identical
/// to blur_separable_float for every geometry, radius and `threads` >= 1.
/// The worker count is clamped to the row count and exec::kMaxTiledBands;
/// thread-spawn resource exhaustion falls back to single-threaded.
img::ImageF blur_fused_stream(const img::ImageF& src,
                              const GaussianKernel& kernel, int threads = 1);

/// What tone_map_fused returns: the fused pipeline never materializes the
/// intermediate planes a PipelineResult carries, which is the point.
struct FusedToneMapResult {
  /// Final display-referred image in [0, 1]; bit-identical to
  /// tone_map(hdr, opt).output for any float-datapath configuration.
  img::ImageF output;
  /// Normalisation scale that was applied (PipelineResult::input_max).
  float input_max = 0.0f;
};

/// The five-stage pipeline in one streaming pass per frame (see the file
/// comment). Honours opt's kernel, display_gamma, normalization_scale,
/// brightness/contrast and threads; opt's backend/datapath fields are NOT
/// consulted — this IS the fused_stream float engine. 1..4 channel input,
/// like tone_map(). tone_map_image() routes here when the options resolve
/// to the fused_stream backend.
FusedToneMapResult tone_map_fused(const img::ImageF& hdr,
                                  const PipelineOptions& opt = {});

} // namespace tmhls::tonemap
