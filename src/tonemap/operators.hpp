// The point-wise stages of the paper's tone-mapping pipeline (Fig 1):
// image normalization, non-linear masking (Moroney, CIC 2000) and the
// brightness/contrast adjustments. These always run on the processing
// system (PS) — only the Gaussian blur is accelerated.
#pragma once

#include "image/image.hpp"

namespace tmhls::tonemap {

/// Step 1 — "each pixel inside the input image is normalized with respect
/// to their maximum value": divide every sample by the global maximum.
/// Returns the normalised image; `max_out`, when non-null, receives the
/// maximum found (needed to report the scale). A non-positive maximum
/// throws InvalidArgument (the image carries no light).
img::ImageF normalize_to_max(const img::ImageF& src, float* max_out = nullptr);

/// Display encoding: out = in^(1/gamma) with inputs clamped to >= 0.
/// Part of step 1 in this pipeline: Moroney's non-linear masking (step 3)
/// is defined on display-referred data, so the normalised linear-light
/// image is gamma-encoded before the mask is built. gamma = 1 is the
/// identity.
img::ImageF display_encode(const img::ImageF& in, float gamma);

/// Step 3 — non-linear masking. Each output sample is the input raised to
/// a per-pixel exponent driven by the blurred intensity mask:
///
///     gamma(x, y) = 2 ^ ((mask(x, y) - 0.5) / 0.5)
///     out(x, y, c) = in(x, y, c) ^ gamma(x, y)
///
/// Dark neighbourhoods (mask < 0.5) get gamma < 1 and brighten; bright
/// neighbourhoods darken — "dark zones will become brighter while bright
/// zones will become darker" (§II). This is Moroney's local color
/// correction with the mask inversion folded into the exponent's sign.
/// `in` may have 1..4 channels; `mask` must be 1-channel and same size.
img::ImageF nonlinear_masking(const img::ImageF& in, const img::ImageF& mask);

/// Step 4 — brightness and contrast adjustment "to improve quality":
///     out = clamp((in - 0.5) * contrast + 0.5 + brightness, 0, 1)
img::ImageF brightness_contrast(const img::ImageF& in, float brightness,
                                float contrast);

// Row-span forms of the point-wise stages. The whole-plane functions above
// are loops over these, and the fused streaming engine (fused_stream.cpp)
// applies them row by row as frames stream through its line buffers — one
// arithmetic source of truth is what keeps the fused path bit-identical to
// the plane-at-a-time pipeline. `in` and `out` may alias (every operation
// is element-wise). `n` counts samples (pixels x channels).

/// normalize_to_max's inner loop: out[i] = in[i] / max_v.
void normalize_max_row(const float* in, float* out, std::size_t n,
                       float max_v);

/// The external-scale normalisation of stages::normalize:
/// out[i] = clamp(in[i] / scale, 0, 1).
void normalize_scale_row(const float* in, float* out, std::size_t n,
                         float scale);

/// display_encode's inner loop: out[i] = max(in[i], 0) ^ inv_gamma (the
/// caller precomputes inv_gamma = 1 / gamma, as display_encode does).
void display_encode_row(const float* in, float* out, std::size_t n,
                        float inv_gamma);

/// nonlinear_masking's inner loop over one interleaved row of `width`
/// pixels with `channels` samples each; `mask` holds the row's `width`
/// 1-channel mask values.
void masking_row(const float* in, const float* mask, float* out, int width,
                 int channels);

/// brightness_contrast's inner loop.
void brightness_contrast_row(const float* in, float* out, std::size_t n,
                             float brightness, float contrast);

} // namespace tmhls::tonemap
