// The point-wise stages of the paper's tone-mapping pipeline (Fig 1):
// image normalization, non-linear masking (Moroney, CIC 2000) and the
// brightness/contrast adjustments. These always run on the processing
// system (PS) — only the Gaussian blur is accelerated.
#pragma once

#include "image/image.hpp"

namespace tmhls::tonemap {

/// Step 1 — "each pixel inside the input image is normalized with respect
/// to their maximum value": divide every sample by the global maximum.
/// Returns the normalised image; `max_out`, when non-null, receives the
/// maximum found (needed to report the scale). A non-positive maximum
/// throws InvalidArgument (the image carries no light).
img::ImageF normalize_to_max(const img::ImageF& src, float* max_out = nullptr);

/// Display encoding: out = in^(1/gamma) with inputs clamped to >= 0.
/// Part of step 1 in this pipeline: Moroney's non-linear masking (step 3)
/// is defined on display-referred data, so the normalised linear-light
/// image is gamma-encoded before the mask is built. gamma = 1 is the
/// identity.
img::ImageF display_encode(const img::ImageF& in, float gamma);

/// Step 3 — non-linear masking. Each output sample is the input raised to
/// a per-pixel exponent driven by the blurred intensity mask:
///
///     gamma(x, y) = 2 ^ ((mask(x, y) - 0.5) / 0.5)
///     out(x, y, c) = in(x, y, c) ^ gamma(x, y)
///
/// Dark neighbourhoods (mask < 0.5) get gamma < 1 and brighten; bright
/// neighbourhoods darken — "dark zones will become brighter while bright
/// zones will become darker" (§II). This is Moroney's local color
/// correction with the mask inversion folded into the exponent's sign.
/// `in` may have 1..4 channels; `mask` must be 1-channel and same size.
img::ImageF nonlinear_masking(const img::ImageF& in, const img::ImageF& mask);

/// Step 4 — brightness and contrast adjustment "to improve quality":
///     out = clamp((in - 0.5) * contrast + 0.5 + brightness, 0, 1)
img::ImageF brightness_contrast(const img::ImageF& in, float brightness,
                                float contrast);

} // namespace tmhls::tonemap
