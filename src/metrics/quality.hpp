// Full-reference image quality metrics: MSE and PSNR.
//
// §IV.B of the paper evaluates the fixed-point accelerator output against
// the floating-point reference with PSNR (66 dB reported) before turning to
// SSIM for a perceptual judgement. PSNR here follows the same convention:
// peak = 1.0 for display-referred [0,1] float images (the tone-mapped
// outputs), computed over all channels.
#pragma once

#include "image/image.hpp"

namespace tmhls::metrics {

/// Mean squared error over all samples of two same-shape images.
double mse(const img::ImageF& a, const img::ImageF& b);

/// Peak signal-to-noise ratio in dB with the given peak value.
/// Identical images return +infinity.
double psnr(const img::ImageF& a, const img::ImageF& b, double peak = 1.0);

/// Maximum absolute per-sample difference (L-infinity error).
double max_abs_error(const img::ImageF& a, const img::ImageF& b);

/// Mean absolute per-sample difference (L1 / sample count).
double mean_abs_error(const img::ImageF& a, const img::ImageF& b);

} // namespace tmhls::metrics
