#include "metrics/quality.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace tmhls::metrics {

double mse(const img::ImageF& a, const img::ImageF& b) {
  TMHLS_REQUIRE(a.same_shape(b), "mse: shape mismatch");
  TMHLS_REQUIRE(!a.empty(), "mse: empty images");
  auto sa = a.samples();
  auto sb = b.samples();
  double acc = 0.0;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    const double d = static_cast<double>(sa[i]) - static_cast<double>(sb[i]);
    acc += d * d;
  }
  return acc / static_cast<double>(sa.size());
}

double psnr(const img::ImageF& a, const img::ImageF& b, double peak) {
  TMHLS_REQUIRE(peak > 0.0, "psnr: peak must be positive");
  const double err = mse(a, b);
  if (err == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(peak * peak / err);
}

double max_abs_error(const img::ImageF& a, const img::ImageF& b) {
  TMHLS_REQUIRE(a.same_shape(b), "max_abs_error: shape mismatch");
  auto sa = a.samples();
  auto sb = b.samples();
  double worst = 0.0;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(sa[i]) -
                                     static_cast<double>(sb[i])));
  }
  return worst;
}

double mean_abs_error(const img::ImageF& a, const img::ImageF& b) {
  TMHLS_REQUIRE(a.same_shape(b), "mean_abs_error: shape mismatch");
  TMHLS_REQUIRE(!a.empty(), "mean_abs_error: empty images");
  auto sa = a.samples();
  auto sb = b.samples();
  double acc = 0.0;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    acc += std::abs(static_cast<double>(sa[i]) - static_cast<double>(sb[i]));
  }
  return acc / static_cast<double>(sa.size());
}

} // namespace tmhls::metrics
