#include "metrics/ssim.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace tmhls::metrics {

namespace {

// Normalised 1D Gaussian window; SSIM's 2D window is separable.
std::vector<double> gaussian_window(int radius, double sigma) {
  std::vector<double> w(static_cast<std::size_t>(2 * radius + 1));
  double sum = 0.0;
  for (int i = -radius; i <= radius; ++i) {
    const double v = std::exp(-(i * i) / (2.0 * sigma * sigma));
    w[static_cast<std::size_t>(i + radius)] = v;
    sum += v;
  }
  for (double& v : w) v /= sum;
  return w;
}

// Separable weighted filtering with clamp-to-edge borders, double precision.
// SSIM statistics are second-order (variances, covariances), so the filter
// runs in double even though the images are float.
std::vector<double> filter_separable(const std::vector<double>& src, int w,
                                     int h, const std::vector<double>& win) {
  const int radius = static_cast<int>(win.size() / 2);
  std::vector<double> tmp(src.size());
  std::vector<double> dst(src.size());
  auto at = [&](const std::vector<double>& buf, int x, int y) {
    x = x < 0 ? 0 : (x >= w ? w - 1 : x);
    y = y < 0 ? 0 : (y >= h ? h - 1 : y);
    return buf[static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
               static_cast<std::size_t>(x)];
  };
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      double acc = 0.0;
      for (int k = -radius; k <= radius; ++k) {
        acc += win[static_cast<std::size_t>(k + radius)] * at(src, x + k, y);
      }
      tmp[static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
          static_cast<std::size_t>(x)] = acc;
    }
  }
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      double acc = 0.0;
      for (int k = -radius; k <= radius; ++k) {
        acc += win[static_cast<std::size_t>(k + radius)] * at(tmp, x, y + k);
      }
      dst[static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
          static_cast<std::size_t>(x)] = acc;
    }
  }
  return dst;
}

std::vector<double> to_double_luma(const img::ImageF& im) {
  const img::ImageF luma = img::luminance(im);
  auto s = luma.samples();
  return std::vector<double>(s.begin(), s.end());
}

} // namespace

img::ImageF ssim_map(const img::ImageF& a, const img::ImageF& b,
                     const SsimOptions& opt) {
  TMHLS_REQUIRE(a.same_shape(b), "ssim: shape mismatch");
  TMHLS_REQUIRE(!a.empty(), "ssim: empty images");
  TMHLS_REQUIRE(opt.window_radius >= 1, "ssim: window radius must be >= 1");
  TMHLS_REQUIRE(opt.window_sigma > 0.0, "ssim: window sigma must be > 0");
  TMHLS_REQUIRE(opt.dynamic_range > 0.0, "ssim: dynamic range must be > 0");

  const int w = a.width();
  const int h = a.height();
  const auto win = gaussian_window(opt.window_radius, opt.window_sigma);

  const std::vector<double> x = to_double_luma(a);
  const std::vector<double> y = to_double_luma(b);
  std::vector<double> xx(x.size());
  std::vector<double> yy(x.size());
  std::vector<double> xy(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    xx[i] = x[i] * x[i];
    yy[i] = y[i] * y[i];
    xy[i] = x[i] * y[i];
  }

  const auto mu_x = filter_separable(x, w, h, win);
  const auto mu_y = filter_separable(y, w, h, win);
  const auto s_xx = filter_separable(xx, w, h, win);
  const auto s_yy = filter_separable(yy, w, h, win);
  const auto s_xy = filter_separable(xy, w, h, win);

  const double c1 = (opt.k1 * opt.dynamic_range) * (opt.k1 * opt.dynamic_range);
  const double c2 = (opt.k2 * opt.dynamic_range) * (opt.k2 * opt.dynamic_range);

  img::ImageF map(w, h, 1);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double mx = mu_x[i];
    const double my = mu_y[i];
    const double var_x = s_xx[i] - mx * mx;
    const double var_y = s_yy[i] - my * my;
    const double cov = s_xy[i] - mx * my;
    const double num = (2.0 * mx * my + c1) * (2.0 * cov + c2);
    const double den = (mx * mx + my * my + c1) * (var_x + var_y + c2);
    map.samples()[i] = static_cast<float>(num / den);
  }
  return map;
}

double ssim(const img::ImageF& a, const img::ImageF& b,
            const SsimOptions& opt) {
  const img::ImageF map = ssim_map(a, b, opt);
  double acc = 0.0;
  for (float v : map.samples()) acc += v;
  return acc / static_cast<double>(map.sample_count());
}

} // namespace tmhls::metrics
