// Structural Similarity index (SSIM), Wang, Bovik, Sheikh & Simoncelli,
// IEEE TIP 2004 — the perceptual metric §IV.B uses to show the fixed-point
// and floating-point tone-mapped images are visually identical (SSIM = 1).
//
// Implementation follows the reference: 11x11 Gaussian window with
// sigma = 1.5, C1 = (K1*L)^2, C2 = (K2*L)^2 with K1 = 0.01, K2 = 0.03,
// computed on luminance. Multi-channel images are converted via BT.709.
#pragma once

#include "image/image.hpp"

namespace tmhls::metrics {

/// Parameters of the SSIM computation (defaults follow Wang et al. 2004).
struct SsimOptions {
  int window_radius = 5;     ///< 11x11 window
  double window_sigma = 1.5; ///< Gaussian weighting of the window
  double k1 = 0.01;          ///< luminance stabiliser coefficient
  double k2 = 0.03;          ///< contrast stabiliser coefficient
  double dynamic_range = 1.0;///< L: 1.0 for [0,1] float images, 255 for 8-bit
};

/// Mean SSIM between two same-shape images (luminance if multi-channel).
/// Returns a value in [-1, 1]; 1 means structurally identical.
double ssim(const img::ImageF& a, const img::ImageF& b,
            const SsimOptions& opt = {});

/// Per-pixel SSIM map (1-channel, same size as the inputs).
img::ImageF ssim_map(const img::ImageF& a, const img::ImageF& b,
                     const SsimOptions& opt = {});

} // namespace tmhls::metrics
