// Name-indexed registry of execution backends. The global() registry is
// pre-seeded with the six built-in implementations; tools resolve the
// user's --backend string through it, and future PRs plug new strategies
// (GPU, remote, cached) in by registering a factory. The name "auto" is
// reserved: it selects the cheapest capable backend via
// exec::select_auto_backend instead of naming one.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/backend.hpp"

namespace tmhls::exec {

class BackendRegistry {
public:
  /// Creates one (shared, immutable) backend instance on first resolve.
  using Factory = std::function<std::shared_ptr<const Backend>()>;

  /// Register `factory` under `name`; throws InvalidArgument if the name
  /// is already taken.
  void register_backend(const std::string& name, Factory factory);

  /// True if `name` is registered.
  bool contains(const std::string& name) const;

  /// Resolve a backend by name; throws InvalidArgument listing the
  /// registered names when `name` is unknown.
  std::shared_ptr<const Backend> resolve(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

  /// The process-wide registry, pre-seeded with the built-in backends:
  /// separable_float, separable_simd, streaming_float, streaming_fixed,
  /// hlscode, fused_stream.
  static BackendRegistry& global();

private:
  struct Entry {
    Factory factory;
    mutable std::shared_ptr<const Backend> instance;
  };
  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, Entry>> entries_;
};

/// Register the six built-in backends into `registry` (idempotent on the
/// names: throws if one is already present). global() calls this once.
void register_builtin_backends(BackendRegistry& registry);

} // namespace tmhls::exec
