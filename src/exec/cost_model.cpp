#include "exec/cost_model.hpp"

#include <cstdlib>
#include <istream>

#include "common/error.hpp"

namespace tmhls::exec {

namespace {

/// Locate `"key":` in a JSONL line and return the offset just past the
/// colon, or npos. Keys are emitted unescaped by bench_common's
/// JsonRecord, so a plain substring search is exact.
std::size_t value_offset(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return std::string::npos;
  return pos + needle.size();
}

bool parse_string_field(const std::string& line, const std::string& key,
                        std::string& out) {
  std::size_t pos = value_offset(line, key);
  if (pos == std::string::npos || pos >= line.size() || line[pos] != '"') {
    return false;
  }
  const std::size_t end = line.find('"', pos + 1);
  if (end == std::string::npos) return false;
  out = line.substr(pos + 1, end - pos - 1);
  return true;
}

bool parse_number_field(const std::string& line, const std::string& key,
                        double& out) {
  const std::size_t pos = value_offset(line, key);
  if (pos == std::string::npos) return false;
  const char* begin = line.c_str() + pos;
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin) return false;
  out = v;
  return true;
}

} // namespace

std::vector<ThroughputRecord> parse_throughput_jsonl(std::istream& in) {
  std::vector<ThroughputRecord> records;
  std::string line;
  while (std::getline(in, line)) {
    std::string bench;
    if (!parse_string_field(line, "bench", bench) ||
        bench != "backend_throughput") {
      continue;
    }
    ThroughputRecord r;
    double threads = 0.0;
    double width = 0.0;
    double height = 0.0;
    double taps = 0.0;
    if (!parse_string_field(line, "backend", r.backend) ||
        !parse_number_field(line, "threads", threads) ||
        !parse_number_field(line, "width", width) ||
        !parse_number_field(line, "height", height) ||
        !parse_number_field(line, "taps", taps) ||
        !parse_number_field(line, "seconds_per_frame",
                            r.seconds_per_frame)) {
      continue;
    }
    r.threads = static_cast<int>(threads);
    r.width = static_cast<int>(width);
    r.height = static_cast<int>(height);
    r.taps = static_cast<int>(taps);
    records.push_back(std::move(r));
  }
  return records;
}

CostModel::CostModel() {
  // Single-thread MACs/second priors, measured with bench_backend_throughput
  // (1024x768, 97 taps, best of 3) on the reference container. They exist so
  // estimate_cost and automatic selection work out of the box; any real
  // calibration run replaces them.
  macs_per_second_ = {
      {"separable_float", 1.50e9},
      {"separable_simd", 8.56e9},
      {"streaming_float", 0.79e9},
      {"streaming_fixed", 0.23e9},
      {"hlscode", 0.81e9},
      {"fused_stream", 9.02e9},
  };
  // Point-wise stage throughput and plane bandwidth priors, same
  // provenance as the MAC figures above (reference container, -O3):
  // scalar per-pixel arithmetic sustains a few Gop/s, and a plane-sized
  // streaming copy moves on the order of 10 GB/s.
  pointwise_ops_per_second_ = 4.0e9;
  plane_bandwidth_bytes_per_second_ = 1.2e10;
}

double CostModel::macs_per_second(const std::string& backend) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = macs_per_second_.find(backend);
  return it == macs_per_second_.end() ? 0.0 : it->second;
}

void CostModel::set_macs_per_second(const std::string& backend,
                                    double macs_per_s) {
  TMHLS_REQUIRE(macs_per_s > 0.0,
                "cost model: throughput must be positive");
  const std::lock_guard<std::mutex> lock(mutex_);
  macs_per_second_[backend] = macs_per_s;
}

double CostModel::pointwise_ops_per_second() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return pointwise_ops_per_second_;
}

void CostModel::set_pointwise_ops_per_second(double ops_per_s) {
  TMHLS_REQUIRE(ops_per_s > 0.0,
                "cost model: point-wise throughput must be positive");
  const std::lock_guard<std::mutex> lock(mutex_);
  pointwise_ops_per_second_ = ops_per_s;
}

double CostModel::plane_bandwidth_bytes_per_second() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return plane_bandwidth_bytes_per_second_;
}

void CostModel::set_plane_bandwidth_bytes_per_second(double bytes_per_s) {
  TMHLS_REQUIRE(bytes_per_s > 0.0,
                "cost model: plane bandwidth must be positive");
  const std::lock_guard<std::mutex> lock(mutex_);
  plane_bandwidth_bytes_per_second_ = bytes_per_s;
}

int CostModel::calibrate(const std::vector<ThroughputRecord>& records) {
  // Best observed single-thread throughput per backend in this batch.
  std::map<std::string, double> best;
  for (const ThroughputRecord& r : records) {
    if (r.threads != 1 || r.seconds_per_frame <= 0.0 || r.width <= 0 ||
        r.height <= 0 || r.taps <= 0) {
      continue;
    }
    const double macs = 2.0 * static_cast<double>(r.taps) *
                        static_cast<double>(r.width) *
                        static_cast<double>(r.height);
    const double mps = macs / r.seconds_per_frame;
    auto [it, inserted] = best.emplace(r.backend, mps);
    if (!inserted && mps > it->second) it->second = mps;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [backend, mps] : best) {
    macs_per_second_[backend] = mps;
  }
  return static_cast<int>(best.size());
}

int CostModel::calibrate_from_jsonl(std::istream& in) {
  return calibrate(parse_throughput_jsonl(in));
}

CostModel& CostModel::global() {
  static CostModel* model = new CostModel();
  return *model;
}

} // namespace tmhls::exec
