#include "exec/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <thread>
#include <tuple>

#include "common/error.hpp"

namespace tmhls::exec {

namespace {

/// Snapshot format version; bump when the record shapes below change.
constexpr const char* kCalibrationVersion = "1";

/// EWMA blend of online observations: 0.75 old / 0.25 new, the serving
/// layer's convention (ToneMapService's per-shard service-time EWMA).
constexpr double kObservationBlend = 0.25;

/// Locate `"key":` in a JSONL line and return the offset just past the
/// colon, or npos. Keys are emitted unescaped by bench_common's
/// JsonRecord, so a plain substring search is exact.
std::size_t value_offset(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return std::string::npos;
  return pos + needle.size();
}

bool parse_string_field(const std::string& line, const std::string& key,
                        std::string& out) {
  std::size_t pos = value_offset(line, key);
  if (pos == std::string::npos || pos >= line.size() || line[pos] != '"') {
    return false;
  }
  const std::size_t end = line.find('"', pos + 1);
  if (end == std::string::npos) return false;
  out = line.substr(pos + 1, end - pos - 1);
  return true;
}

bool parse_number_field(const std::string& line, const std::string& key,
                        double& out) {
  const std::size_t pos = value_offset(line, key);
  if (pos == std::string::npos) return false;
  const char* begin = line.c_str() + pos;
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin) return false;
  out = v;
  return true;
}

/// Minimal string escaping matching benchkit::JsonRecord (quotes and
/// backslashes — backend names need no more).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

double amdahl_speedup(double serial_fraction, int threads) {
  if (threads <= 1) return 1.0;
  const double t = static_cast<double>(threads);
  return t / (1.0 + serial_fraction * (t - 1.0));
}

} // namespace

std::vector<ThroughputRecord> parse_throughput_jsonl(std::istream& in) {
  std::vector<ThroughputRecord> records;
  std::string line;
  while (std::getline(in, line)) {
    std::string bench;
    if (!parse_string_field(line, "bench", bench) ||
        bench != "backend_throughput") {
      continue;
    }
    ThroughputRecord r;
    double threads = 0.0;
    double width = 0.0;
    double height = 0.0;
    double taps = 0.0;
    if (!parse_string_field(line, "backend", r.backend) ||
        !parse_number_field(line, "threads", threads) ||
        !parse_number_field(line, "width", width) ||
        !parse_number_field(line, "height", height) ||
        !parse_number_field(line, "taps", taps) ||
        !parse_number_field(line, "seconds_per_frame",
                            r.seconds_per_frame)) {
      continue;
    }
    r.threads = static_cast<int>(threads);
    r.width = static_cast<int>(width);
    r.height = static_cast<int>(height);
    r.taps = static_cast<int>(taps);
    records.push_back(std::move(r));
  }
  return records;
}

int geometry_bucket(int width, int height) {
  TMHLS_REQUIRE(width > 0 && height > 0,
                "geometry_bucket: dimensions must be positive");
  const double pixels =
      static_cast<double>(width) * static_cast<double>(height);
  return static_cast<int>(std::floor(std::log2(pixels)));
}

CostModel::CostModel() {
  // Single-thread MACs/second priors, measured with bench_backend_throughput
  // (1024x768, 97 taps, best of 3) on the reference container. They exist so
  // estimate_cost and automatic selection work out of the box; any real
  // calibration run replaces them.
  macs_per_second_ = {
      {"separable_float", 1.50e9},
      {"separable_simd", 8.56e9},
      {"streaming_float", 0.79e9},
      {"streaming_fixed", 0.23e9},
      {"hlscode", 0.81e9},
      {"fused_stream", 9.02e9},
  };
  // Point-wise stage throughput and plane bandwidth priors, same
  // provenance as the MAC figures above (reference container, -O3):
  // scalar per-pixel arithmetic sustains a few Gop/s, and a plane-sized
  // streaming copy moves on the order of 10 GB/s.
  pointwise_ops_per_second_ = 4.0e9;
  plane_bandwidth_bytes_per_second_ = 1.2e10;
}

double CostModel::macs_per_second(const std::string& backend) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = macs_per_second_.find(backend);
  return it == macs_per_second_.end() ? 0.0 : it->second;
}

void CostModel::set_macs_per_second(const std::string& backend,
                                    double macs_per_s) {
  TMHLS_REQUIRE(macs_per_s > 0.0,
                "cost model: throughput must be positive");
  const std::lock_guard<std::mutex> lock(mutex_);
  macs_per_second_[backend] = macs_per_s;
  bump_revision();
}

double CostModel::pointwise_ops_per_second() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return pointwise_ops_per_second_;
}

void CostModel::set_pointwise_ops_per_second(double ops_per_s) {
  TMHLS_REQUIRE(ops_per_s > 0.0,
                "cost model: point-wise throughput must be positive");
  const std::lock_guard<std::mutex> lock(mutex_);
  pointwise_ops_per_second_ = ops_per_s;
  bump_revision();
}

double CostModel::plane_bandwidth_bytes_per_second() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return plane_bandwidth_bytes_per_second_;
}

void CostModel::set_plane_bandwidth_bytes_per_second(double bytes_per_s) {
  TMHLS_REQUIRE(bytes_per_s > 0.0,
                "cost model: plane bandwidth must be positive");
  const std::lock_guard<std::mutex> lock(mutex_);
  plane_bandwidth_bytes_per_second_ = bytes_per_s;
  bump_revision();
}

double CostModel::serial_fraction(const std::string& backend) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return serial_fraction_locked(backend);
}

double CostModel::serial_fraction_locked(const std::string& backend) const {
  const auto it = serial_fraction_.find(backend);
  return it == serial_fraction_.end() ? 0.0 : it->second;
}

void CostModel::set_serial_fraction(const std::string& backend,
                                    double fraction) {
  TMHLS_REQUIRE(std::isfinite(fraction),
                "cost model: serial fraction must be finite");
  const std::lock_guard<std::mutex> lock(mutex_);
  serial_fraction_[backend] = std::clamp(fraction, 0.0, 1.0);
  bump_revision();
}

double CostModel::thread_speedup(const std::string& backend,
                                 int threads) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return thread_speedup_locked(backend, threads);
}

double CostModel::thread_speedup_locked(const std::string& backend,
                                        int threads) const {
  return amdahl_speedup(serial_fraction_locked(backend), threads);
}

void CostModel::record_observation(const std::string& backend, int width,
                                   int height, int threads, double seconds) {
  if (backend.empty() || width <= 0 || height <= 0 ||
      !std::isfinite(seconds) || seconds <= 0.0) {
    return;
  }
  const double pixels =
      static_cast<double>(width) * static_cast<double>(height);
  const int bucket = geometry_bucket(width, height);
  const std::lock_guard<std::mutex> lock(mutex_);
  // Normalise to a single-thread-equivalent figure so observations taken
  // at different thread counts blend into one EWMA.
  const double st_equivalent =
      seconds * thread_speedup_locked(backend, std::max(1, threads));
  const double spp = st_equivalent / pixels;
  Observation& obs = observations_[backend][bucket];
  obs.seconds_per_pixel =
      obs.samples == 0
          ? spp
          : (1.0 - kObservationBlend) * obs.seconds_per_pixel +
                kObservationBlend * spp;
  ++obs.samples;
  bump_revision();
}

double CostModel::observed_seconds(const std::string& backend, int width,
                                   int height, int threads) const {
  if (width <= 0 || height <= 0) return 0.0;
  const int bucket = geometry_bucket(width, height);
  const double pixels =
      static_cast<double>(width) * static_cast<double>(height);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto bit = observations_.find(backend);
  if (bit == observations_.end()) return 0.0;
  const auto oit = bit->second.find(bucket);
  if (oit == bit->second.end() || oit->second.samples == 0) return 0.0;
  return oit->second.seconds_per_pixel * pixels /
         thread_speedup_locked(backend, std::max(1, threads));
}

std::uint64_t CostModel::observation_count(const std::string& backend,
                                           int width, int height) const {
  if (width <= 0 || height <= 0) return 0;
  const int bucket = geometry_bucket(width, height);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto bit = observations_.find(backend);
  if (bit == observations_.end()) return 0;
  const auto oit = bit->second.find(bucket);
  return oit == bit->second.end() ? 0 : oit->second.samples;
}

std::uint64_t CostModel::revision() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return revision_;
}

void CostModel::bump_revision() { ++revision_; }

int CostModel::calibrate(const std::vector<ThroughputRecord>& records) {
  // Best observed single-thread throughput per backend in this batch,
  // plus the best single-thread time per (backend, geometry, taps) as
  // the baseline the multi-thread records' speedups are measured from.
  std::map<std::string, double> best;
  using GeometryKey = std::tuple<std::string, int, int, int>;
  std::map<GeometryKey, double> single_thread_seconds;
  for (const ThroughputRecord& r : records) {
    if (r.seconds_per_frame <= 0.0 || r.width <= 0 || r.height <= 0 ||
        r.taps <= 0) {
      continue;
    }
    if (r.threads != 1) continue;
    const double macs = 2.0 * static_cast<double>(r.taps) *
                        static_cast<double>(r.width) *
                        static_cast<double>(r.height);
    const double mps = macs / r.seconds_per_frame;
    auto [it, inserted] = best.emplace(r.backend, mps);
    if (!inserted && mps > it->second) it->second = mps;
    const GeometryKey key{r.backend, r.width, r.height, r.taps};
    auto [sit, sinserted] =
        single_thread_seconds.emplace(key, r.seconds_per_frame);
    if (!sinserted && r.seconds_per_frame < sit->second) {
      sit->second = r.seconds_per_frame;
    }
  }
  // Amdahl fit: each multi-thread record with a single-thread baseline of
  // the same geometry and tap count yields one serial-fraction sample
  //   s = (t / S - 1) / (t - 1),  S = t1_seconds / tN_seconds
  // (the exact inversion of speedup(t) = t / (1 + s (t - 1))); a backend's
  // fraction becomes the mean of its samples, clamped into [0, 1].
  std::map<std::string, std::pair<double, int>> fraction_sums;
  for (const ThroughputRecord& r : records) {
    if (r.threads <= 1 || r.seconds_per_frame <= 0.0 || r.width <= 0 ||
        r.height <= 0 || r.taps <= 0) {
      continue;
    }
    const auto sit = single_thread_seconds.find(
        GeometryKey{r.backend, r.width, r.height, r.taps});
    if (sit == single_thread_seconds.end()) continue;
    const double speedup = sit->second / r.seconds_per_frame;
    if (speedup <= 0.0) continue;
    const double t = static_cast<double>(r.threads);
    const double s = std::clamp((t / speedup - 1.0) / (t - 1.0), 0.0, 1.0);
    auto& [sum, count] = fraction_sums[r.backend];
    sum += s;
    ++count;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [backend, mps] : best) {
    macs_per_second_[backend] = mps;
  }
  for (const auto& [backend, sum_count] : fraction_sums) {
    serial_fraction_[backend] = sum_count.first / sum_count.second;
  }
  if (!best.empty() || !fraction_sums.empty()) bump_revision();
  return static_cast<int>(best.size());
}

int CostModel::calibrate_from_jsonl(std::istream& in) {
  return calibrate(parse_throughput_jsonl(in));
}

std::string CostModel::host_fingerprint() {
#if defined(__x86_64__) || defined(_M_X64)
  const char* arch = "x86_64";
#elif defined(__aarch64__) || defined(_M_ARM64)
  const char* arch = "aarch64";
#elif defined(__riscv)
  const char* arch = "riscv";
#else
  const char* arch = "unknown";
#endif
  const unsigned cpus = std::max(1u, std::thread::hardware_concurrency());
  return std::string(arch) + "-c" + std::to_string(cpus);
}

void CostModel::save_snapshot(std::ostream& out) const {
  const std::string host = host_fingerprint();
  std::ostringstream line;
  line.precision(std::numeric_limits<double>::max_digits10);
  const auto prefix = [&](const char* kind) {
    line.str("");
    line << "{\"calibration\":\"" << kCalibrationVersion << "\",\"host\":\""
         << escape(host) << "\",\"kind\":\"" << kind << '"';
  };
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [backend, mps] : macs_per_second_) {
    prefix("backend");
    line << ",\"backend\":\"" << escape(backend)
         << "\",\"macs_per_second\":" << mps
         << ",\"serial_fraction\":" << serial_fraction_locked(backend)
         << "}";
    out << line.str() << '\n';
  }
  prefix("pointwise");
  line << ",\"ops_per_second\":" << pointwise_ops_per_second_ << "}";
  out << line.str() << '\n';
  prefix("plane_bandwidth");
  line << ",\"bytes_per_second\":" << plane_bandwidth_bytes_per_second_
       << "}";
  out << line.str() << '\n';
  for (const auto& [backend, buckets] : observations_) {
    for (const auto& [bucket, obs] : buckets) {
      if (obs.samples == 0) continue;
      prefix("observation");
      line << ",\"backend\":\"" << escape(backend)
           << "\",\"bucket\":" << bucket
           << ",\"seconds_per_pixel\":" << obs.seconds_per_pixel
           << ",\"samples\":" << obs.samples << "}";
      out << line.str() << '\n';
    }
  }
}

int CostModel::load_snapshot(std::istream& in) {
  const std::string host = host_fingerprint();
  int applied = 0;
  std::string line;
  while (std::getline(in, line)) {
    std::string version;
    if (!parse_string_field(line, "calibration", version) ||
        version != kCalibrationVersion) {
      continue;
    }
    std::string record_host;
    if (!parse_string_field(line, "host", record_host) ||
        record_host != host) {
      continue; // a different machine's calibration does not transfer
    }
    std::string kind;
    if (!parse_string_field(line, "kind", kind)) continue;
    if (kind == "backend") {
      std::string backend;
      double mps = 0.0;
      if (!parse_string_field(line, "backend", backend) ||
          !parse_number_field(line, "macs_per_second", mps) || mps <= 0.0 ||
          !std::isfinite(mps)) {
        continue;
      }
      double fraction = 0.0;
      parse_number_field(line, "serial_fraction", fraction);
      if (!std::isfinite(fraction)) fraction = 0.0;
      const std::lock_guard<std::mutex> lock(mutex_);
      macs_per_second_[backend] = mps;
      serial_fraction_[backend] = std::clamp(fraction, 0.0, 1.0);
      bump_revision();
      ++applied;
    } else if (kind == "pointwise") {
      double ops = 0.0;
      if (!parse_number_field(line, "ops_per_second", ops) || ops <= 0.0 ||
          !std::isfinite(ops)) {
        continue;
      }
      const std::lock_guard<std::mutex> lock(mutex_);
      pointwise_ops_per_second_ = ops;
      bump_revision();
      ++applied;
    } else if (kind == "plane_bandwidth") {
      double bytes = 0.0;
      if (!parse_number_field(line, "bytes_per_second", bytes) ||
          bytes <= 0.0 || !std::isfinite(bytes)) {
        continue;
      }
      const std::lock_guard<std::mutex> lock(mutex_);
      plane_bandwidth_bytes_per_second_ = bytes;
      bump_revision();
      ++applied;
    } else if (kind == "observation") {
      std::string backend;
      double bucket = 0.0;
      double spp = 0.0;
      double samples = 0.0;
      if (!parse_string_field(line, "backend", backend) ||
          !parse_number_field(line, "bucket", bucket) ||
          !parse_number_field(line, "seconds_per_pixel", spp) ||
          !parse_number_field(line, "samples", samples) || spp <= 0.0 ||
          !std::isfinite(spp) || samples < 1.0) {
        continue;
      }
      const std::lock_guard<std::mutex> lock(mutex_);
      Observation& obs =
          observations_[backend][static_cast<int>(bucket)];
      obs.seconds_per_pixel = spp;
      obs.samples = static_cast<std::uint64_t>(samples);
      bump_revision();
      ++applied;
    }
  }
  return applied;
}

int CostModel::absorb_jsonl(std::istream& in) {
  // The stream is consumed twice (bench records, then snapshot records),
  // so buffer it once.
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::istringstream bench_pass(buffer.str());
  int applied = calibrate_from_jsonl(bench_pass);
  std::istringstream snapshot_pass(buffer.str());
  applied += load_snapshot(snapshot_pass);
  return applied;
}

CostModel& CostModel::global() {
  static CostModel* model = new CostModel();
  return *model;
}

} // namespace tmhls::exec
