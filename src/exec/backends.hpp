// The four built-in execution backends:
//
//   SeparableFloatBackend — the original CPU form (direct neighbour
//       indexing), the paper's "SW source code" baseline.
//   StreamingFloatBackend — the §III.B restructured line-buffer form,
//       float datapath; numerically identical to the separable form.
//   StreamingFixedBackend — the §III.C restructured form with the
//       ap_fixed-modelled datapath.
//   HlsCodeBackend        — routes through the synthesizable hlscode
//       streaming kernels (blur_pass_* / gaussian_blur_top_*), so the
//       sources Vivado HLS would compile are exercised by the real
//       pipeline, in either datapath.
//
// The CPU backends support the tiled multi-threaded mode (bit-identical
// to single-threaded); the hlscode kernels are inherently sequential
// stream processes, so HlsCodeBackend does not.
#pragma once

#include "exec/backend.hpp"

namespace tmhls::exec {

class SeparableFloatBackend final : public Backend {
public:
  const char* name() const override { return "separable_float"; }
  BackendCapabilities capabilities() const override;
  img::ImageF run_blur(const img::ImageF& intensity,
                       const tonemap::GaussianKernel& kernel,
                       const BlurContext& ctx) const override;
};

class StreamingFloatBackend final : public Backend {
public:
  const char* name() const override { return "streaming_float"; }
  BackendCapabilities capabilities() const override;
  img::ImageF run_blur(const img::ImageF& intensity,
                       const tonemap::GaussianKernel& kernel,
                       const BlurContext& ctx) const override;
};

class StreamingFixedBackend final : public Backend {
public:
  const char* name() const override { return "streaming_fixed"; }
  BackendCapabilities capabilities() const override;
  img::ImageF run_blur(const img::ImageF& intensity,
                       const tonemap::GaussianKernel& kernel,
                       const BlurContext& ctx) const override;
};

class HlsCodeBackend final : public Backend {
public:
  const char* name() const override { return "hlscode"; }
  BackendCapabilities capabilities() const override;
  img::ImageF run_blur(const img::ImageF& intensity,
                       const tonemap::GaussianKernel& kernel,
                       const BlurContext& ctx) const override;
};

} // namespace tmhls::exec
