// The six built-in execution backends:
//
//   SeparableFloatBackend — the original CPU form (direct neighbour
//       indexing), the paper's "SW source code" baseline.
//   SeparableSimdBackend  — the separable form with interior/border-split
//       rows and the interior vectorized across pixels (GCC/Clang vector
//       extensions); bit-identical to the separable form because every
//       vector lane runs one pixel's scalar tap sequence unchanged. The
//       vectorize-don't-rewrite move is the same algorithm/schedule split
//       the paper's HLS pragmas apply on the FPGA, applied to the host.
//   StreamingFloatBackend — the §III.B restructured line-buffer form,
//       float datapath; numerically identical to the separable form.
//   StreamingFixedBackend — the §III.C restructured form with the
//       ap_fixed-modelled datapath.
//   HlsCodeBackend        — routes through the synthesizable hlscode
//       streaming kernels (blur_pass_* / gaussian_blur_top_*), so the
//       sources Vivado HLS would compile are exercised by the real
//       pipeline, in either datapath.
//   FusedStreamBackend    — the fused sliding-window engine
//       (tonemap::blur_fused_stream): both blur passes in one sweep per
//       frame through a taps-row line buffer, SIMD pass primitives, no
//       full-frame intermediate plane. Float datapath, bit-identical to
//       the separable form at every thread count.
//
// The CPU backends support the tiled multi-threaded mode (bit-identical
// to single-threaded); the hlscode kernels are inherently sequential
// stream processes, so HlsCodeBackend does not.
#pragma once

#include "exec/backend.hpp"

namespace tmhls::exec {

class SeparableFloatBackend final : public Backend {
public:
  const char* name() const override { return "separable_float"; }
  BackendCapabilities capabilities() const override;
  img::ImageF run_blur(const img::ImageF& intensity,
                       const tonemap::GaussianKernel& kernel,
                       const BlurContext& ctx) const override;
};

class SeparableSimdBackend final : public Backend {
public:
  const char* name() const override { return "separable_simd"; }
  BackendCapabilities capabilities() const override;
  img::ImageF run_blur(const img::ImageF& intensity,
                       const tonemap::GaussianKernel& kernel,
                       const BlurContext& ctx) const override;
};

class StreamingFloatBackend final : public Backend {
public:
  const char* name() const override { return "streaming_float"; }
  BackendCapabilities capabilities() const override;
  img::ImageF run_blur(const img::ImageF& intensity,
                       const tonemap::GaussianKernel& kernel,
                       const BlurContext& ctx) const override;
};

class StreamingFixedBackend final : public Backend {
public:
  const char* name() const override { return "streaming_fixed"; }
  BackendCapabilities capabilities() const override;
  img::ImageF run_blur(const img::ImageF& intensity,
                       const tonemap::GaussianKernel& kernel,
                       const BlurContext& ctx) const override;
};

class FusedStreamBackend final : public Backend {
public:
  const char* name() const override { return "fused_stream"; }
  BackendCapabilities capabilities() const override;
  img::ImageF run_blur(const img::ImageF& intensity,
                       const tonemap::GaussianKernel& kernel,
                       const BlurContext& ctx) const override;
};

class HlsCodeBackend final : public Backend {
public:
  const char* name() const override { return "hlscode"; }
  BackendCapabilities capabilities() const override;
  img::ImageF run_blur(const img::ImageF& intensity,
                       const tonemap::GaussianKernel& kernel,
                       const BlurContext& ctx) const override;
  /// Adds the synthesizable restriction the capability struct cannot
  /// express: the fixed datapath exists only in the paper's ap_fixed<16,2>
  /// formats.
  bool can_run(const tonemap::GaussianKernel& kernel,
               const BlurContext& ctx) const override;
};

} // namespace tmhls::exec
