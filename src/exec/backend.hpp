// The execution-backend abstraction: *where and how* the pipeline's
// accelerated stage (the Gaussian mask blur) runs, separated from *what*
// it computes — the algorithm/schedule split that AnyHLS and the Halide
// heterogeneous-DSL line of work apply to HLS targets, applied here to the
// host pipeline.
//
// A Backend owns one implementation strategy of the blur (direct separable,
// streaming line-buffer, fixed-point streaming, or the synthesizable
// hlscode kernels) and reports static capabilities plus analytic cost
// hooks, so callers (PipelineExecutor, accel::ToneMappingSystem) select
// and reason about implementations without switching on an enum.
#pragma once

#include <cstddef>

#include "image/image.hpp"
#include "tonemap/blur.hpp"
#include "tonemap/kernel.hpp"

namespace tmhls::exec {

/// Static properties of a backend implementation, queried by the executor
/// (thread clamping), the accel layer (datapath width for DMA/BRAM sizing)
/// and tools (listing).
struct BackendCapabilities {
  /// Supports the 32-bit float datapath.
  bool float_datapath = false;
  /// Supports a fixed-point datapath (quantised at the boundary).
  bool fixed_datapath = false;
  /// Raster-order streaming access pattern (line buffer / shift register),
  /// i.e. the FPGA-friendly §III.B form.
  bool streaming = false;
  /// Routes through the synthesizable hlscode kernels (the sources Vivado
  /// HLS would compile), not only a golden model.
  bool synthesizable = false;
  /// Supports the multi-threaded tiled (row-band) execution mode.
  bool tiled_threads = false;
  /// The backend can execute the WHOLE five-stage tone-mapping pipeline
  /// fused into its streaming sweep (tonemap::tone_map_fused): the
  /// point-wise stages ride the blur pass, so one pipeline invocation
  /// touches DRAM only for the input and output planes. Without it, the
  /// staged pipeline materialises every intermediate plane through memory
  /// between stages — the traffic difference estimate_pipeline_cost
  /// prices.
  bool fused_pipeline = false;
  /// Datapath element width in bits (32 for float, the data format width
  /// for fixed-point backends); what the accel layer sizes DMA transfers
  /// and BRAM line buffers with.
  int data_bits = 32;
  /// Element width of the fixed datapath for dual-datapath backends
  /// (data_bits then describes the float one); 0 when not applicable or
  /// when data_bits already describes the fixed datapath.
  int dual_fixed_data_bits = 0;
  /// Output pixels computed per SIMD vector by the implementation's inner
  /// loops; 1 for scalar implementations.
  int simd_lanes = 1;
  /// Largest kernel tap count the implementation supports (a static bound
  /// such as the synthesizable kernels' kMaxTaps); 0 means unbounded.
  int max_taps = 0;
};

/// Per-call execution parameters handed to Backend::run_blur.
struct BlurContext {
  /// Fixed-point formats, used by fixed-datapath backends.
  tonemap::FixedBlurConfig fixed = tonemap::FixedBlurConfig::paper();
  /// Worker threads for the tiled mode. 1 runs the single-threaded golden
  /// path; backends without tiled_threads must be called with threads == 1
  /// (the executor clamps for callers).
  int threads = 1;
  /// Row bands for the tiled decomposition; 0 (default) derives the band
  /// count from `threads`. A schedule-searched plan (exec::Planner) may
  /// set more bands than threads: the tiled runner spawns one worker per
  /// band, so extra bands oversubscribe — finer-grained load balancing
  /// when the blur shares cores with the point-wise stages. Output bits
  /// are identical at every band count (see exec/tiled.hpp).
  int bands = 0;
  /// For backends supporting both datapaths (hlscode): run the fixed-point
  /// one. Ignored by backends whose datapath is fixed by identity.
  bool use_fixed = false;

  /// The band count the tiled decomposition actually runs: `bands` when
  /// set, `threads` otherwise.
  int band_count() const { return bands > 0 ? bands : threads; }
};

/// Analytic cost of one blur invocation, the hook the accel/platform layers
/// use to reason about a backend without running it.
struct BlurCost {
  /// Multiply-accumulate operations (both separable passes).
  double macs = 0.0;
  /// Working-set bytes of the implementation's intermediate storage (line
  /// buffer for streaming backends, full temporary plane otherwise).
  std::size_t buffer_bytes = 0;
  /// Full-plane memory traffic of one invocation: plane-sized reads plus
  /// plane-sized writes. Streaming backends touch the source and the
  /// destination plane once each (2 plane accesses — the intermediate rows
  /// stay in the line buffer); non-streaming separable forms additionally
  /// write and re-read the full temporary plane (4). This is the
  /// bandwidth-side figure of merit the benches report as bytes/pixel.
  std::size_t traffic_bytes = 0;
  /// Estimated wall time of the invocation at the context's thread count,
  /// from the backend's measured per-MAC throughput (CostModel: priors
  /// overridable by bench_backend_throughput JSONL calibration). 0 when no
  /// throughput figure is known for the backend. Thread scaling follows
  /// the CostModel's per-backend Amdahl term (linear until a serial
  /// fraction has been fit from multi-thread calibration records).
  double seconds = 0.0;
};

/// Analytic cost of one END-TO-END pipeline invocation (all five stages:
/// normalize, intensity, mask blur, masking, adjust) on a backend — what
/// automatic selection and the streaming rate controller rank by, where
/// BlurCost prices the accelerated stage alone. The point-wise arithmetic
/// is identical across backends; what differs is the blur itself and
/// whether the intermediate planes between stages travel through memory
/// (staged execution) or stay inside a fused streaming sweep
/// (BackendCapabilities::fused_pipeline).
struct PipelineCost {
  /// The mask-blur term, from Backend::estimate_cost.
  BlurCost blur;
  /// Aggregate non-blur per-pixel arithmetic of the four point-wise
  /// stages (a coarse per-pixel constant — identical across backends).
  double pointwise_ops = 0.0;
  /// Full end-to-end memory traffic of one invocation, including the
  /// inter-stage plane traffic a fused backend avoids.
  std::size_t traffic_bytes = 0;
  /// Estimated wall time: the blur term plus the point-wise arithmetic
  /// term plus (for non-fused backends) the inter-stage plane traffic
  /// priced at the CostModel's plane-bandwidth figure. 0 contributions
  /// are dropped where no throughput figure is known.
  double seconds = 0.0;
};

/// Aggregate point-wise work of the four non-blur stages, in operations
/// per pixel — a coarse model constant (normalize, intensity, masking and
/// adjust together), not a per-stage census.
inline constexpr double kPipelinePointwiseOpsPerPixel = 60.0;

/// Intermediate planes the staged (non-fused) pipeline moves through
/// memory beyond the blur's own traffic: the normalized, intensity,
/// masked and output planes, written and re-read between stages.
inline constexpr std::size_t kPipelineStagePlanes = 9;

/// One execution strategy for the Gaussian mask blur.
class Backend {
public:
  virtual ~Backend() = default;

  /// Registry name, e.g. "streaming_fixed".
  virtual const char* name() const = 0;

  virtual BackendCapabilities capabilities() const = 0;

  /// Blur a 1-channel intensity plane. Must be bit-identical across thread
  /// counts for backends with tiled_threads.
  virtual img::ImageF run_blur(const img::ImageF& intensity,
                               const tonemap::GaussianKernel& kernel,
                               const BlurContext& ctx) const = 0;

  /// Cost hook with a capability-derived default: 2 passes x taps MACs per
  /// pixel; line-buffer storage for streaming backends, a full temporary
  /// plane otherwise; wall time from the CostModel's per-MAC throughput.
  /// `ctx` selects the datapath the estimate is for: fixed-datapath
  /// backends size elements from ctx.fixed, dual-datapath backends from
  /// ctx.use_fixed.
  virtual BlurCost estimate_cost(int width, int height,
                                 const tonemap::GaussianKernel& kernel,
                                 const BlurContext& ctx = {}) const;

  /// Whether this backend can execute a blur of `kernel` under `ctx`. The
  /// default checks the datapath the context selects and the kernel against
  /// the capability struct (fixed/float datapath, max_taps); backends with
  /// restrictions the struct cannot express (e.g. hlscode's paper-format-
  /// only fixed datapath) override. Automatic backend selection filters
  /// candidates through this hook.
  virtual bool can_run(const tonemap::GaussianKernel& kernel,
                       const BlurContext& ctx) const;
};

/// Price one full pipeline invocation on `backend`. Builds on
/// Backend::estimate_cost for the blur term, adds the (backend-invariant)
/// point-wise arithmetic priced at the CostModel's point-wise throughput,
/// and charges non-fused backends the inter-stage plane traffic at the
/// CostModel's plane bandwidth. This is what makes `--backend auto` and
/// the streaming rate controller price fused_stream end-to-end: its blur
/// throughput alone undersells the fusion, which also deletes every
/// intermediate plane round-trip.
PipelineCost estimate_pipeline_cost(const Backend& backend, int width,
                                    int height,
                                    const tonemap::GaussianKernel& kernel,
                                    const BlurContext& ctx = {});

} // namespace tmhls::exec
