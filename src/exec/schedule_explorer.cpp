#include "exec/schedule_explorer.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <tuple>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "image/image.hpp"
#include "tonemap/kernel.hpp"

namespace tmhls::exec {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Deterministic synthetic intensity plane in [0, 1) — the blur's input
/// distribution does not affect its timing, only the geometry does, but a
/// fixed seed keeps repeated sweeps byte-comparable.
img::ImageF synthetic_plane(int width, int height, std::uint64_t seed) {
  img::ImageF plane(width, height, 1);
  Rng rng(seed);
  for (float& v : plane.samples()) {
    v = static_cast<float>(rng.uniform());
  }
  return plane;
}

/// The end-to-end composition of estimate_pipeline_cost with the blur
/// term replaced by a measurement: measured blur + point-wise arithmetic
/// + (for non-fused backends) the inter-stage plane traffic. Keeping the
/// same composition makes measured points comparable with analytic
/// estimates and with the serving layer's end-to-end observations.
double pipeline_seconds_from(double blur_seconds, const Backend& backend,
                             int width, int height, const CostModel& model) {
  double seconds = blur_seconds;
  const double pixels =
      static_cast<double>(width) * static_cast<double>(height);
  const double pointwise = model.pointwise_ops_per_second();
  if (pointwise > 0.0) {
    seconds += kPipelinePointwiseOpsPerPixel * pixels / pointwise;
  }
  if (!backend.capabilities().fused_pipeline) {
    const double bandwidth = model.plane_bandwidth_bytes_per_second();
    if (bandwidth > 0.0) {
      seconds += kPipelineStagePlanes * pixels * sizeof(float) / bandwidth;
    }
  }
  return seconds;
}

} // namespace

std::vector<SchedulePoint> explore_schedules(
    const ScheduleSearchConfig& config, const BackendRegistry& registry,
    CostModel& model) {
  TMHLS_REQUIRE(!config.geometries.empty(),
                "schedule search: need at least one geometry");
  TMHLS_REQUIRE(!config.thread_counts.empty(),
                "schedule search: need at least one thread count");
  TMHLS_REQUIRE(!config.band_factors.empty(),
                "schedule search: need at least one band factor");
  TMHLS_REQUIRE(config.reps >= 1, "schedule search: reps must be >= 1");
  const tonemap::GaussianKernel kernel =
      config.radius > 0 ? tonemap::GaussianKernel(config.sigma, config.radius)
                        : tonemap::GaussianKernel(config.sigma);
  std::vector<std::string> backends = config.backends;
  if (backends.empty()) backends = registry.names();

  std::vector<SchedulePoint> points;
  for (const ScheduleSearchConfig::Geometry& geometry : config.geometries) {
    TMHLS_REQUIRE(geometry.width > 0 && geometry.height > 0,
                  "schedule search: geometry dimensions must be positive");
    const img::ImageF plane =
        synthetic_plane(geometry.width, geometry.height, config.seed);
    for (const std::string& name : backends) {
      const std::shared_ptr<const Backend> backend = registry.resolve(name);
      const BackendCapabilities caps = backend->capabilities();
      for (const int threads : config.thread_counts) {
        TMHLS_REQUIRE(threads >= 1,
                      "schedule search: thread counts must be >= 1");
        for (const int factor : config.band_factors) {
          TMHLS_REQUIRE(factor >= 1,
                        "schedule search: band factors must be >= 1");
          SchedulePoint point;
          point.backend = name;
          point.width = geometry.width;
          point.height = geometry.height;
          point.bucket = geometry_bucket(geometry.width, geometry.height);
          point.threads = threads;
          point.bands = threads * factor;
          if (!caps.float_datapath) {
            point.feasible = false;
            point.rejection_reason = "no float datapath";
            points.push_back(std::move(point));
            continue;
          }
          if (!caps.tiled_threads && (threads > 1 || point.bands > 1)) {
            point.feasible = false;
            point.rejection_reason = "no tiled execution";
            points.push_back(std::move(point));
            continue;
          }
          BlurContext ctx;
          ctx.threads = caps.tiled_threads ? threads : 1;
          ctx.bands = caps.tiled_threads ? point.bands : 0;
          ctx.use_fixed = false;
          if (!backend->can_run(kernel, ctx)) {
            point.feasible = false;
            point.rejection_reason = "kernel unsupported";
            points.push_back(std::move(point));
            continue;
          }
          double best = 0.0;
          for (int rep = 0; rep < config.reps; ++rep) {
            const Clock::time_point start = Clock::now();
            const img::ImageF out = backend->run_blur(plane, kernel, ctx);
            const double elapsed = seconds_since(start);
            TMHLS_REQUIRE(!out.empty(), "schedule search: empty blur output");
            if (rep == 0 || elapsed < best) best = elapsed;
          }
          point.blur_seconds = best;
          point.pipeline_seconds = pipeline_seconds_from(
              best, *backend, geometry.width, geometry.height, model);
          if (config.record_observations) {
            model.record_observation(name, geometry.width, geometry.height,
                                     ctx.threads, point.pipeline_seconds);
          }
          points.push_back(std::move(point));
        }
      }
    }
  }
  return points;
}

RoutingTable build_routing_table(const std::vector<SchedulePoint>& points) {
  std::map<int, const SchedulePoint*> best;
  for (const SchedulePoint& point : points) {
    if (!point.feasible || point.pipeline_seconds <= 0.0) continue;
    const auto [it, inserted] = best.emplace(point.bucket, &point);
    if (inserted) continue;
    const SchedulePoint& incumbent = *it->second;
    const auto key = [](const SchedulePoint& p) {
      return std::make_tuple(p.pipeline_seconds, p.backend, p.threads,
                             p.bands);
    };
    if (key(point) < key(incumbent)) it->second = &point;
  }
  RoutingTable table;
  for (const auto& [bucket, point] : best) {
    RoutingEntry entry;
    entry.bucket = bucket;
    entry.backend = point->backend;
    entry.threads = point->threads;
    entry.bands = point->bands;
    entry.measured_seconds = point->pipeline_seconds;
    table.entries.push_back(std::move(entry));
  }
  return table;
}

std::string render(const std::vector<SchedulePoint>& points) {
  TextTable table({"Backend", "Geometry", "Bucket", "Threads", "Bands",
                   "Blur (ms)", "Pipeline (ms)", "Status"});
  for (const SchedulePoint& p : points) {
    const std::string geometry =
        std::to_string(p.width) + "x" + std::to_string(p.height);
    table.add_row({p.backend, geometry, std::to_string(p.bucket),
                   std::to_string(p.threads), std::to_string(p.bands),
                   p.feasible ? format_fixed(p.blur_seconds * 1e3, 3) : "-",
                   p.feasible ? format_fixed(p.pipeline_seconds * 1e3, 3)
                              : "-",
                   p.feasible ? "ok" : p.rejection_reason});
  }
  return table.render();
}

std::string render(const RoutingTable& table) {
  TextTable out({"Bucket", "Backend", "Threads", "Bands", "Pipeline (ms)"});
  for (const RoutingEntry& entry : table.entries) {
    out.add_row({std::to_string(entry.bucket), entry.backend,
                 std::to_string(entry.threads), std::to_string(entry.bands),
                 format_fixed(entry.measured_seconds * 1e3, 3)});
  }
  return out.render();
}

} // namespace tmhls::exec
