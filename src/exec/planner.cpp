#include "exec/planner.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "exec/cost_model.hpp"

namespace tmhls::exec {

const char* to_string(PlanDatapath datapath) {
  switch (datapath) {
    case PlanDatapath::unspecified: return "unspecified";
    case PlanDatapath::float32: return "float";
    case PlanDatapath::fixed_point: return "fixed";
  }
  return "?";
}

ExecutorOptions ExecutionPlan::executor_options() const {
  ExecutorOptions eo;
  eo.threads = threads;
  eo.bands = bands;
  eo.use_fixed = use_fixed;
  eo.fixed = fixed;
  return eo;
}

PipelineExecutor ExecutionPlan::make_executor() const {
  TMHLS_REQUIRE(backend != nullptr, "ExecutionPlan: no backend resolved");
  return PipelineExecutor(backend, executor_options());
}

const RoutingEntry* RoutingTable::find(int bucket) const {
  for (const RoutingEntry& entry : entries) {
    if (entry.bucket == bucket) return &entry;
  }
  return nullptr;
}

Planner::Planner(const BackendRegistry* registry, CostModel* model)
    : registry_(registry), model_(model) {}

const BackendRegistry& Planner::registry() const {
  return registry_ != nullptr ? *registry_ : BackendRegistry::global();
}

CostModel& Planner::model() const {
  return model_ != nullptr ? *model_ : CostModel::global();
}

ExecutionPlan Planner::plan(const PlanRequest& request,
                            const tonemap::GaussianKernel& kernel) const {
  TMHLS_REQUIRE(request.threads >= 1,
                "PlanRequest::threads must be >= 1, got " +
                    std::to_string(request.threads));
  TMHLS_REQUIRE(request.width > 0 && request.height > 0,
                "PlanRequest: frame dimensions must be positive");
  const std::string name =
      request.backend.empty() ? std::string("auto") : request.backend;
  if (name == "auto") return plan_auto(request, kernel);

  const std::shared_ptr<const Backend> backend = registry().resolve(name);
  const BackendCapabilities caps = backend->capabilities();
  bool use_fixed = request.datapath == PlanDatapath::fixed_point;
  // Asking a float-only backend for the fixed datapath would otherwise be
  // silently ignored (e.g. `--fixed --backend streaming_float`).
  TMHLS_REQUIRE(!use_fixed || caps.fixed_datapath,
                "backend " + name +
                    " has no fixed-point datapath; drop the fixed-point "
                    "request or choose streaming_fixed / hlscode");
  if (!use_fixed && !caps.float_datapath) {
    // Fixed-only backend named explicitly: an unspecified datapath
    // follows the backend's only datapath (so `--backend streaming_fixed`
    // alone just works, at any pipeline depth), while an explicit float
    // request is a contradiction — quantised output for a float ask.
    TMHLS_REQUIRE(request.datapath != PlanDatapath::float32,
                  "backend " + name +
                      " has no float datapath; drop the float request or "
                      "choose a float-capable backend");
    use_fixed = true;
  }
  ExecutionPlan plan;
  plan.backend = backend;
  plan.threads = caps.tiled_threads ? request.threads : 1;
  plan.use_fixed = use_fixed;
  plan.fixed = request.fixed;
  plan.model_revision = model().revision();
  BlurContext ctx;
  ctx.fixed = plan.fixed;
  ctx.use_fixed = plan.use_fixed;
  ctx.threads = plan.threads;
  const double observed = model().observed_seconds(
      name, request.width, request.height, plan.threads);
  plan.predicted_seconds =
      observed > 0.0
          ? observed
          : estimate_pipeline_cost(*backend, request.width, request.height,
                                   kernel, ctx)
                .seconds;
  return plan;
}

ExecutionPlan Planner::plan_auto(const PlanRequest& request,
                                 const tonemap::GaussianKernel& kernel) const {
  const bool use_fixed = request.datapath == PlanDatapath::fixed_point;

  // A routing table (measured schedule search) outranks the cost model —
  // for float plans only, since entries are measured on the float
  // datapath. An entry whose backend cannot run this kernel falls through
  // to cost ranking rather than failing the plan.
  if (!use_fixed) {
    std::optional<RoutingEntry> routed;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (routing_) {
        const RoutingEntry* entry = routing_->find(
            geometry_bucket(request.width, request.height));
        if (entry != nullptr) routed = *entry;
      }
    }
    if (routed && registry().contains(routed->backend)) {
      const std::shared_ptr<const Backend> backend =
          registry().resolve(routed->backend);
      const BackendCapabilities caps = backend->capabilities();
      BlurContext ctx;
      ctx.fixed = request.fixed;
      ctx.use_fixed = false;
      ctx.threads = caps.tiled_threads ? std::max(1, routed->threads) : 1;
      ctx.bands = routed->bands;
      if (backend->can_run(kernel, ctx)) {
        ExecutionPlan plan;
        plan.backend = backend;
        plan.threads = ctx.threads;
        plan.bands = caps.tiled_threads ? routed->bands : 0;
        plan.use_fixed = false;
        plan.fixed = request.fixed;
        plan.predicted_seconds = routed->measured_seconds;
        plan.auto_selected = true;
        plan.from_routing_table = true;
        plan.model_revision = model().revision();
        return plan;
      }
    }
  }

  // Cost-ranked selection. Rank by the END-TO-END pipeline estimate, not
  // the blur alone: the point-wise term is backend-invariant (a constant
  // offset), but a fused backend additionally avoids the inter-stage
  // plane traffic, a real advantage a blur-only ranking cannot see.
  // Measured observations (the online EWMAs) outrank analytic estimates
  // for the backends that have them; uncalibrated backends (no blur
  // throughput figure) fall back to the MAC count and sort after every
  // timed candidate. Ties break by name (the registry's sorted order),
  // keeping the choice deterministic.
  std::shared_ptr<const Backend> best;
  int best_threads = 1;
  bool best_has_time = false;
  double best_key = 0.0;
  for (const std::string& candidate : registry().names()) {
    const std::shared_ptr<const Backend> backend =
        registry().resolve(candidate);
    BlurContext ctx;
    ctx.fixed = request.fixed;
    ctx.use_fixed = use_fixed;
    ctx.threads =
        backend->capabilities().tiled_threads ? request.threads : 1;
    if (!backend->can_run(kernel, ctx)) continue;
    const double observed = model().observed_seconds(
        candidate, request.width, request.height, ctx.threads);
    double key = 0.0;
    bool has_time = false;
    if (observed > 0.0) {
      key = observed;
      has_time = true;
    } else {
      const PipelineCost cost = estimate_pipeline_cost(
          *backend, request.width, request.height, kernel, ctx);
      has_time = cost.blur.seconds > 0.0;
      key = has_time ? cost.seconds : cost.blur.macs;
    }
    if (!best || (has_time && !best_has_time) ||
        (has_time == best_has_time && key < best_key)) {
      best = backend;
      best_threads = ctx.threads;
      best_has_time = has_time;
      best_key = key;
    }
  }
  TMHLS_REQUIRE(best != nullptr,
                "auto backend selection: no registered backend can run "
                "this request (datapath or kernel size unsupported)");
  ExecutionPlan plan;
  plan.backend = best;
  plan.threads = best_threads;
  plan.use_fixed = use_fixed;
  plan.fixed = request.fixed;
  plan.predicted_seconds = best_has_time ? best_key : 0.0;
  plan.auto_selected = true;
  plan.model_revision = model().revision();
  return plan;
}

void Planner::install_routing_table(RoutingTable table) {
  const std::lock_guard<std::mutex> lock(mutex_);
  routing_ = std::move(table);
}

void Planner::clear_routing_table() {
  const std::lock_guard<std::mutex> lock(mutex_);
  routing_.reset();
}

bool Planner::has_routing_table() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return routing_.has_value();
}

Planner& Planner::global() {
  static Planner* planner = new Planner();
  return *planner;
}

} // namespace tmhls::exec
