// exec::ScheduleExplorer — CPU schedule search, the software analogue of
// the accel layer's HLS design-space exploration (src/accel/explorer,
// §III.B): where that sweep searches ARRAY_PARTITION factors and
// fixed-point widths for the FPGA datapath, this one searches the host
// schedule — backend x thread count x band shape, per frame geometry — by
// MEASURING real blur runs on synthetic planes, and emits a routing table
// (best point per geometry bucket) the exec::Planner serves "auto"
// requests from. Each measurement is also fed into the CostModel as an
// online observation, so even buckets the routing table does not cover
// benefit from the search.
//
// Schedules choose scheduling, never bits: every point measured here runs
// the float datapath, byte-identical to separable_float at one thread.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/cost_model.hpp"
#include "exec/planner.hpp"
#include "exec/registry.hpp"

namespace tmhls::exec {

/// One evaluated schedule point: a (backend, threads, bands) combination
/// measured at one frame geometry.
struct SchedulePoint {
  std::string backend;
  int width = 0;
  int height = 0;
  int bucket = 0; ///< exec::geometry_bucket(width, height)
  int threads = 1;
  int bands = 0; ///< 0 == derived from threads
  /// Measured blur seconds (best of config.reps).
  double blur_seconds = 0.0;
  /// End-to-end pipeline seconds: the measured blur plus the model's
  /// point-wise and inter-stage-traffic terms (the same composition as
  /// estimate_pipeline_cost, with the blur term replaced by the
  /// measurement). This is what ranks points and fills the routing table.
  double pipeline_seconds = 0.0;
  /// False when the combination cannot run (fixed-only datapath, no tiled
  /// capability at threads/bands > 1, kernel beyond the tap bound).
  bool feasible = true;
  std::string rejection_reason;
};

/// Sweep configuration.
struct ScheduleSearchConfig {
  /// Frame geometries to measure; each contributes one routing bucket.
  struct Geometry {
    int width = 0;
    int height = 0;
  };
  std::vector<Geometry> geometries = {{640, 480}, {1024, 768}};
  /// Worker thread counts to sweep.
  std::vector<int> thread_counts = {1, 2, 4};
  /// Band multipliers: each thread count t is measured at bands = t * f
  /// for every factor f (1 reproduces the default band-per-thread
  /// decomposition; larger factors oversubscribe for load balancing).
  std::vector<int> band_factors = {1, 2};
  /// Backends to sweep; empty selects every registry backend that can run
  /// the float datapath (schedule search never changes bits, so the fixed
  /// datapath is out of scope).
  std::vector<std::string> backends;
  /// Kernel of the measured blur; radius 0 selects ceil(3 * sigma). The
  /// default is the paper's 97-tap mask kernel.
  double sigma = 16.0;
  int radius = 0;
  /// Measurement repetitions per point (best-of).
  int reps = 1;
  /// Feed each feasible measurement into `model` as an online observation
  /// (CostModel::record_observation), so auto plans improve even where
  /// the routing table is not installed.
  bool record_observations = true;
  /// Seed of the synthetic intensity plane (deterministic content).
  std::uint64_t seed = 42;
};

/// Run the schedule sweep: measures every (geometry x backend x threads x
/// bands) combination. Infeasible combinations are reported with a
/// rejection reason rather than skipped, mirroring the accel explorer.
std::vector<SchedulePoint> explore_schedules(
    const ScheduleSearchConfig& config,
    const BackendRegistry& registry = BackendRegistry::global(),
    CostModel& model = CostModel::global());

/// The routing table of a sweep: for each geometry bucket, the feasible
/// point with the lowest end-to-end pipeline_seconds (ties break by
/// backend name, then fewer threads, then fewer bands — deterministic for
/// equal measurements). Install into a Planner to have "auto" serve it.
RoutingTable build_routing_table(const std::vector<SchedulePoint>& points);

/// Render a sweep as an aligned text table.
std::string render(const std::vector<SchedulePoint>& points);

/// Render a routing table as an aligned text table.
std::string render(const RoutingTable& table);

} // namespace tmhls::exec
