// Asynchronous request/future execution on top of PipelineExecutor — the
// host-side analogue of the paper's DMA/PL overlap: a submit() hands the
// mask blur to an owned worker pool and returns immediately, so the
// caller's thread can run the point-wise PS stages of the next frame while
// the blur of the previous one is in flight (tonemap::FramePipeline), and
// a serving front can keep many requests moving at once (ExecutorPool —
// which serve::ToneMapService uses to shard one oversized frame's blur
// across executors by row bands).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "exec/executor.hpp"

namespace tmhls::img::detail {
class PlaneRecycler;
}

namespace tmhls::exec {

/// One asynchronous blur request: the 1-channel intensity plane to blur
/// and the Gaussian kernel to blur it with.
struct BlurRequest {
  img::ImageF intensity;
  tonemap::GaussianKernel kernel;
};

/// A consistent snapshot of one AsyncExecutor's queue and lifetime
/// counters — the introspection surface serving layers size shard counts
/// and report load from. All four values are read under one lock, so
/// `queued + running == submitted - completed` holds within a snapshot.
struct AsyncExecutorStats {
  /// Requests accepted by submit() but not yet picked up by a worker.
  std::size_t queued = 0;
  /// Requests a worker is currently executing.
  std::size_t running = 0;
  /// Lifetime count of accepted requests.
  std::uint64_t submitted = 0;
  /// Lifetime count of finished requests (successes and errors alike —
  /// a request whose backend threw still counts as completed, because its
  /// future has been satisfied). Advances before the future becomes
  /// ready, so a caller that observed a result also observes it counted.
  std::uint64_t completed = 0;
};

/// Configuration of an AsyncExecutor's worker pool and admission queue.
struct AsyncExecutorOptions {
  /// Worker threads draining the queue. 1 (the default) serialises blurs
  /// in submission order — the model of the paper's single accelerator;
  /// each blur may still be internally multi-threaded via
  /// ExecutorOptions::threads.
  int workers = 1;
  /// Bound on requests waiting in the queue (not yet picked up by a
  /// worker). submit() blocks when the queue is full — backpressure
  /// instead of unbounded buffering.
  int queue_capacity = 8;
};

/// Validation of AsyncExecutorOptions: throws InvalidArgument naming the
/// offending field unless workers >= 1 and queue_capacity >= 1.
void validate(const AsyncExecutorOptions& options);

/// An executor with an asynchronous submit/future interface: requests are
/// queued (bounded) and executed by owned worker threads on the wrapped
/// PipelineExecutor. Every future obtained from submit() becomes ready
/// eventually — the destructor completes all accepted requests before
/// returning, so destroying an AsyncExecutor with work in flight is safe.
///
/// Thread safety: submit() may be called from any number of threads
/// concurrently. The wrapped PipelineExecutor is used concurrently by the
/// workers; executors are immutable after construction, and the backends'
/// run_blur is const and stateless, so this is safe by construction.
class AsyncExecutor {
public:
  explicit AsyncExecutor(PipelineExecutor executor,
                         AsyncExecutorOptions options = {});
  /// Completes every accepted request (workers drain the queue), then
  /// joins the pool.
  ~AsyncExecutor();

  AsyncExecutor(const AsyncExecutor&) = delete;
  AsyncExecutor& operator=(const AsyncExecutor&) = delete;

  /// Enqueue a blur; returns the future of its result. Blocks while the
  /// queue is at capacity. An error thrown by the backend (e.g. a kernel
  /// beyond its static bound) is delivered through the future.
  std::future<img::ImageF> submit(BlurRequest request);

  /// The synchronous executor the workers run requests on.
  const PipelineExecutor& executor() const { return executor_; }
  const AsyncExecutorOptions& options() const { return options_; }

  /// Requests accepted but not yet completed (queued + running).
  std::size_t in_flight() const;

  /// One consistent snapshot of queue depth and lifetime counters.
  /// Thread-safe; may be called concurrently with submit().
  AsyncExecutorStats stats() const;

private:
  struct Task {
    BlurRequest request;
    std::promise<img::ImageF> promise;
  };

  void worker_loop();

  PipelineExecutor executor_;
  AsyncExecutorOptions options_;
  /// The creating thread's plane recycler, snapshotted at construction
  /// and re-installed in every worker: blur outputs allocated by the pool
  /// behind a FramePipeline or service shard stay pool-backed even though
  /// they materialise on this executor's own threads. Null when the
  /// creating thread was unpooled.
  std::shared_ptr<img::detail::PlaneRecycler> inherited_recycler_;

  mutable std::mutex mutex_;
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_not_full_;
  std::deque<Task> queue_;
  std::size_t running_ = 0; ///< tasks popped by a worker, not yet finished
  std::uint64_t submitted_ = 0; ///< lifetime accepted requests
  std::uint64_t completed_ = 0; ///< lifetime finished requests
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// How an ExecutorPool picks the shard for each submitted request.
enum class PoolRouting {
  /// Strict rotation by submission index. Deterministic placement; the
  /// right choice when requests are uniform (and what the pool's tests
  /// pin down).
  round_robin,
  /// Route to the shard with the fewest queued + running requests
  /// (snapshot via AsyncExecutor::stats()), scanning from the rotation
  /// position so equal loads keep the round-robin spread. The right
  /// choice when request costs vary — a shard stuck behind a big blur
  /// stops receiving new work until it catches up.
  least_loaded,
};

/// Configuration of an ExecutorPool.
struct ExecutorPoolOptions {
  /// Number of AsyncExecutor shards. Each shard owns its worker pool and
  /// queue, so `executors * per_executor.workers` blurs can run at once.
  int executors = 2;
  /// Options applied to every shard.
  AsyncExecutorOptions per_executor;
  /// Shard selection policy for submit().
  PoolRouting routing = PoolRouting::round_robin;
};

/// Validation of ExecutorPoolOptions: throws InvalidArgument naming the
/// offending field unless executors >= 1 (per_executor is validated too).
void validate(const ExecutorPoolOptions& options);

/// Aggregated + per-shard statistics of an ExecutorPool. `per_shard[i]` is
/// shard i's own snapshot; the scalar fields are their sums. Shards are
/// snapshotted one after another (there is no pool-wide lock), so the
/// totals are exact per shard but only approximately simultaneous across
/// shards — fine for load reporting, not for lock-free coordination.
struct ExecutorPoolStats {
  std::vector<AsyncExecutorStats> per_shard;
  std::size_t queued = 0;
  std::size_t running = 0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
};

/// Flatten into the common reporting form: one "executor_pool" snapshot of
/// the sums, then one "executor_pool.shardN" snapshot per shard.
std::vector<common::StatsSnapshot> snapshot(const ExecutorPoolStats& stats);

/// The serving-front seam: shards concurrent blur requests round-robin
/// across several AsyncExecutors, each a copy of one prototype
/// PipelineExecutor. Callers that fan many independent blurs out
/// (serve::sharded_mask_blur splitting one frame into row bands, batch
/// request fan-in) submit here and collect futures; completion order
/// across shards is unordered — order, when needed, is the caller's (or
/// the serving layer's) concern.
class ExecutorPool {
public:
  explicit ExecutorPool(const PipelineExecutor& prototype,
                        ExecutorPoolOptions options = {});

  /// Enqueue a blur on the next shard (round-robin). Thread-safe.
  std::future<img::ImageF> submit(BlurRequest request);

  int shards() const { return static_cast<int>(shards_.size()); }
  AsyncExecutor& shard(int index);
  const ExecutorPoolOptions& options() const { return options_; }

  /// Requests accepted but not yet completed, summed over all shards.
  std::size_t in_flight() const;

  /// Per-shard snapshots plus their sums (see ExecutorPoolStats for the
  /// consistency caveat). Thread-safe; serving layers poll this to report
  /// queue depths and per-shard job counts.
  ExecutorPoolStats stats() const;

private:
  ExecutorPoolOptions options_;
  std::vector<std::unique_ptr<AsyncExecutor>> shards_;
  std::atomic<std::size_t> next_{0};
};

} // namespace tmhls::exec
