// Multi-threaded tiled execution of the separable blur: row-band
// decomposition with a halo sized by the kernel radius — the same
// restructuring discipline §III.B applies to the FPGA (decompose the 2D
// problem so every worker touches a bounded local window) applied to the
// host CPU.
//
// Each worker owns a contiguous band of output rows. The horizontal pass
// is row-local, so bands are independent; the vertical pass reads up to
// `radius` rows of the intermediate plane beyond the band's edges (the
// halo), which neighbouring workers produce — a std::barrier between the
// passes is the halo exchange. Taps accumulate in the same order as the
// single-threaded golden models, so output is bit-identical for every
// thread count.
#pragma once

#include <functional>

#include "image/image.hpp"
#include "tonemap/blur.hpp"
#include "tonemap/kernel.hpp"

namespace tmhls::exec {

/// Upper bound on worker threads (bands) per blur decomposition, whatever
/// the caller asks for: beyond this, bands are thinner than their halo is
/// worth and thread-spawn resource exhaustion becomes a real failure mode.
/// Shared by the tiled mode here, the fused streaming engine's band
/// decomposition (tonemap::blur_fused_stream) and the serving layer's blur
/// sharding (serve::sharded_mask_blur).
inline constexpr int kMaxTiledBands = 64;

/// Run `work(band)` on `bands` independent worker threads — the no-barrier
/// counterpart of the tiled mode's internal banded runner, for
/// decompositions whose bands share no intermediate state (the fused
/// engine's halo-extended line buffers, where each band recomputes its halo
/// rows instead of exchanging them). Returns false if thread spawning was
/// cut short by resource exhaustion — outputs are then invalid and the
/// caller must redo the work (e.g. single-threaded). Otherwise the first
/// exception thrown by any worker is rethrown here.
bool run_independent_bands(int bands, const std::function<void(int)>& work);

/// Tiled float blur; bit-identical to blur_separable_float and
/// blur_streaming_float for any `threads` >= 1. The worker count is
/// clamped to the row count and to kMaxTiledBands; thread-spawn
/// resource exhaustion falls back to single-threaded execution.
img::ImageF blur_tiled_float(const img::ImageF& src,
                             const tonemap::GaussianKernel& kernel,
                             int threads);

/// Tiled float blur through the SIMD pass primitives (vectorized across
/// pixels); bit-identical to blur_separable_float and blur_tiled_float for
/// any `threads` >= 1, with the same clamping and fallback behaviour.
img::ImageF blur_tiled_simd(const img::ImageF& src,
                            const tonemap::GaussianKernel& kernel,
                            int threads);

/// Tiled fixed-point blur; bit-identical to blur_streaming_fixed.
img::ImageF blur_tiled_fixed(const img::ImageF& src,
                             const tonemap::GaussianKernel& kernel,
                             const tonemap::FixedBlurConfig& cfg, int threads);

/// Row range [begin, end) of band `band` out of `bands` over `rows` rows:
/// contiguous, balanced to within one row. Exposed for tests.
struct RowBand {
  int begin = 0;
  int end = 0;
};
RowBand row_band(int rows, int bands, int band);

} // namespace tmhls::exec
