// Multi-threaded tiled execution of the separable blur: row-band
// decomposition with a halo sized by the kernel radius — the same
// restructuring discipline §III.B applies to the FPGA (decompose the 2D
// problem so every worker touches a bounded local window) applied to the
// host CPU.
//
// Each worker owns a contiguous band of output rows. The horizontal pass
// is row-local, so bands are independent; the vertical pass reads up to
// `radius` rows of the intermediate plane beyond the band's edges (the
// halo), which neighbouring workers produce — a std::barrier between the
// passes is the halo exchange. Taps accumulate in the same order as the
// single-threaded golden models, so output is bit-identical for every
// thread count.
#pragma once

#include "image/image.hpp"
#include "tonemap/blur.hpp"
#include "tonemap/kernel.hpp"

namespace tmhls::exec {

/// Tiled float blur; bit-identical to blur_separable_float and
/// blur_streaming_float for any `threads` >= 1. The worker count is
/// clamped to the row count and to an internal cap (64); thread-spawn
/// resource exhaustion falls back to single-threaded execution.
img::ImageF blur_tiled_float(const img::ImageF& src,
                             const tonemap::GaussianKernel& kernel,
                             int threads);

/// Tiled float blur through the SIMD pass primitives (vectorized across
/// pixels); bit-identical to blur_separable_float and blur_tiled_float for
/// any `threads` >= 1, with the same clamping and fallback behaviour.
img::ImageF blur_tiled_simd(const img::ImageF& src,
                            const tonemap::GaussianKernel& kernel,
                            int threads);

/// Tiled fixed-point blur; bit-identical to blur_streaming_fixed.
img::ImageF blur_tiled_fixed(const img::ImageF& src,
                             const tonemap::GaussianKernel& kernel,
                             const tonemap::FixedBlurConfig& cfg, int threads);

/// Row range [begin, end) of band `band` out of `bands` over `rows` rows:
/// contiguous, balanced to within one row. Exposed for tests.
struct RowBand {
  int begin = 0;
  int end = 0;
};
RowBand row_band(int rows, int bands, int band);

} // namespace tmhls::exec
