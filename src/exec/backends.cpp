#include "exec/backends.hpp"

#include "common/error.hpp"
#include "exec/registry.hpp"
#include "exec/tiled.hpp"
#include "hlscode/blur_kernels.hpp"
#include "tonemap/blur_passes.hpp"
#include "tonemap/fused_stream.hpp"

namespace tmhls::exec {

namespace {

void require_single_thread(const Backend& backend, const BlurContext& ctx) {
  TMHLS_REQUIRE(ctx.threads == 1,
                std::string(backend.name()) +
                    " backend does not support tiled multi-threading");
}

} // namespace

BackendCapabilities SeparableFloatBackend::capabilities() const {
  BackendCapabilities caps;
  caps.float_datapath = true;
  caps.tiled_threads = true;
  caps.data_bits = 32;
  return caps;
}

img::ImageF SeparableFloatBackend::run_blur(
    const img::ImageF& intensity, const tonemap::GaussianKernel& kernel,
    const BlurContext& ctx) const {
  if (ctx.band_count() > 1) {
    return blur_tiled_float(intensity, kernel, ctx.band_count());
  }
  return tonemap::blur_separable_float(intensity, kernel);
}

BackendCapabilities SeparableSimdBackend::capabilities() const {
  BackendCapabilities caps;
  caps.float_datapath = true;
  caps.tiled_threads = true;
  caps.data_bits = 32;
  caps.simd_lanes = tonemap::kSimdDefaultLanes;
  return caps;
}

img::ImageF SeparableSimdBackend::run_blur(
    const img::ImageF& intensity, const tonemap::GaussianKernel& kernel,
    const BlurContext& ctx) const {
  // Single source for both modes: blur_tiled_simd runs the SIMD pass
  // primitives over one band (band_count == 1) or the banded
  // decomposition.
  return blur_tiled_simd(intensity, kernel, ctx.band_count());
}

BackendCapabilities StreamingFloatBackend::capabilities() const {
  BackendCapabilities caps;
  caps.float_datapath = true;
  caps.streaming = true;
  caps.tiled_threads = true;
  caps.data_bits = 32;
  return caps;
}

img::ImageF StreamingFloatBackend::run_blur(
    const img::ImageF& intensity, const tonemap::GaussianKernel& kernel,
    const BlurContext& ctx) const {
  // The tiled form accumulates taps in the same order as the streaming
  // form, which is itself bit-identical to the separable form (§III.B).
  if (ctx.band_count() > 1) {
    return blur_tiled_float(intensity, kernel, ctx.band_count());
  }
  return tonemap::blur_streaming_float(intensity, kernel);
}

BackendCapabilities StreamingFixedBackend::capabilities() const {
  BackendCapabilities caps;
  caps.fixed_datapath = true;
  caps.streaming = true;
  caps.tiled_threads = true;
  caps.data_bits = tonemap::FixedBlurConfig::paper().data.width();
  return caps;
}

img::ImageF StreamingFixedBackend::run_blur(
    const img::ImageF& intensity, const tonemap::GaussianKernel& kernel,
    const BlurContext& ctx) const {
  if (ctx.band_count() > 1) {
    return blur_tiled_fixed(intensity, kernel, ctx.fixed, ctx.band_count());
  }
  return tonemap::blur_streaming_fixed(intensity, kernel, ctx.fixed);
}

BackendCapabilities FusedStreamBackend::capabilities() const {
  BackendCapabilities caps;
  caps.float_datapath = true;
  caps.streaming = true; // line-buffer working set, no full-frame tmp plane
  caps.tiled_threads = true;
  // The whole five-stage pipeline can ride this backend's streaming sweep
  // (tonemap::tone_map_fused), deleting the inter-stage plane traffic —
  // what estimate_pipeline_cost credits this flag for.
  caps.fused_pipeline = true;
  caps.data_bits = 32;
  caps.simd_lanes = tonemap::kSimdDefaultLanes;
  return caps;
}

img::ImageF FusedStreamBackend::run_blur(const img::ImageF& intensity,
                                         const tonemap::GaussianKernel& kernel,
                                         const BlurContext& ctx) const {
  return tonemap::blur_fused_stream(intensity, kernel, ctx.band_count());
}

BackendCapabilities HlsCodeBackend::capabilities() const {
  BackendCapabilities caps;
  caps.float_datapath = true;
  caps.fixed_datapath = true;
  caps.streaming = true;
  caps.synthesizable = true;
  caps.data_bits = 32; // the float datapath
  caps.dual_fixed_data_bits =
      tonemap::FixedBlurConfig::paper().data.width(); // the Pixel16 one
  caps.max_taps = hlscode::kMaxTaps; // the synthesizable static bound
  return caps;
}

bool HlsCodeBackend::can_run(const tonemap::GaussianKernel& kernel,
                             const BlurContext& ctx) const {
  if (!Backend::can_run(kernel, ctx)) return false;
  if (!ctx.use_fixed) return true;
  const tonemap::FixedBlurConfig paper = tonemap::FixedBlurConfig::paper();
  return ctx.fixed.data == paper.data &&
         ctx.fixed.accumulator == paper.accumulator;
}

img::ImageF HlsCodeBackend::run_blur(const img::ImageF& intensity,
                                     const tonemap::GaussianKernel& kernel,
                                     const BlurContext& ctx) const {
  require_single_thread(*this, ctx);
  TMHLS_REQUIRE(kernel.taps() <= hlscode::kMaxTaps,
                "hlscode backend: kernel exceeds the synthesizable static "
                "bound kMaxTaps");
  if (ctx.use_fixed) {
    // The synthesizable fixed datapath is the paper's Pixel16 format.
    TMHLS_REQUIRE(ctx.fixed.data == tonemap::FixedBlurConfig::paper().data &&
                      ctx.fixed.accumulator ==
                          tonemap::FixedBlurConfig::paper().accumulator,
                  "hlscode backend: fixed datapath is ap_fixed<16,2> only");
    return hlscode::run_blur_fixed(intensity, kernel);
  }
  return hlscode::run_blur_float(intensity, kernel);
}

void register_builtin_backends(BackendRegistry& registry) {
  registry.register_backend("separable_float", [] {
    return std::make_shared<const SeparableFloatBackend>();
  });
  registry.register_backend("separable_simd", [] {
    return std::make_shared<const SeparableSimdBackend>();
  });
  registry.register_backend("streaming_float", [] {
    return std::make_shared<const StreamingFloatBackend>();
  });
  registry.register_backend("streaming_fixed", [] {
    return std::make_shared<const StreamingFixedBackend>();
  });
  registry.register_backend(
      "hlscode", [] { return std::make_shared<const HlsCodeBackend>(); });
  registry.register_backend("fused_stream", [] {
    return std::make_shared<const FusedStreamBackend>();
  });
}

} // namespace tmhls::exec
