// Measured per-backend throughput — the calibration state behind
// Backend::estimate_cost's wall-time estimate and exec::Planner's backend
// choice (the ROADMAP's backend autotuner).
//
// The model has three layers, consulted in this order by the planner:
//   1. Online observations: per-(backend x geometry-bucket) EWMAs of
//      measured end-to-end pipeline seconds, fed by serve::ToneMapService
//      (each full-quality completion) and exec::explore_schedules. These
//      are the ground truth where they exist.
//   2. Calibrated throughput: sustained single-thread MACs/second per
//      backend plus an Amdahl serial fraction fit from multi-thread
//      records, from bench_backend_throughput JSONL.
//   3. Priors: figures measured once on the reference dev container, so
//      estimates work out of the box.
// All three persist: save_snapshot()/load_snapshot() round-trip the model
// as versioned JSONL keyed by a host fingerprint (arch + cpu count), so a
// restarted server starts warm (`tmhls_cli serve --calibration model.jsonl
// ... --save-calibration model.jsonl`).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace tmhls::exec {

/// One bench_backend_throughput measurement, as parsed from its JSONL
/// record stream.
struct ThroughputRecord {
  std::string backend;
  int threads = 1;
  int width = 0;
  int height = 0;
  int taps = 0;
  double seconds_per_frame = 0.0;
};

/// Parse a bench_backend_throughput JSONL stream (one record per line).
/// Lines of other benches and malformed lines are skipped, so a mixed
/// perf-trajectory file feeds in directly.
std::vector<ThroughputRecord> parse_throughput_jsonl(std::istream& in);

/// Geometry bucket of a frame: floor(log2(width * height)). Buckets group
/// geometries within a factor of two in pixel count — close enough that a
/// seconds-per-pixel figure measured at one geometry transfers to the
/// others in its bucket. This is the key online observations and routing
/// tables are indexed by.
int geometry_bucket(int width, int height);

/// Per-backend cost calibration, thread-safe. Unknown backends report 0
/// (no estimate) rather than a guess.
class CostModel {
public:
  /// Seeded with single-thread priors for the built-in backends, measured
  /// on the reference container (GCC 12, -O3, x86-64). Calibration
  /// replaces them with real measurements.
  CostModel();

  /// Sustained single-thread MACs/second of `backend`; 0 when unknown.
  double macs_per_second(const std::string& backend) const;

  /// Set or override one backend's throughput figure directly.
  void set_macs_per_second(const std::string& backend, double macs_per_s);

  /// Sustained point-wise stage arithmetic throughput (operations/second)
  /// pricing the pipeline's non-blur stages in estimate_pipeline_cost.
  /// Backend-invariant: the point-wise stages run the same scalar code
  /// whichever blur backend is selected. Ships as a prior; override with
  /// set_pointwise_ops_per_second from a measurement.
  double pointwise_ops_per_second() const;
  void set_pointwise_ops_per_second(double ops_per_s);

  /// Streaming plane bandwidth (bytes/second) pricing the inter-stage
  /// plane traffic the staged (non-fused) pipeline pays and a fused
  /// backend avoids. Ships as a prior; override with
  /// set_plane_bandwidth_bytes_per_second from a measurement.
  double plane_bandwidth_bytes_per_second() const;
  void set_plane_bandwidth_bytes_per_second(double bytes_per_s);

  // --- Thread scaling -------------------------------------------------
  //
  // The model used to assume linear scaling over the tiled worker count.
  // It now carries a per-backend Amdahl serial fraction s, fit from
  // multi-thread calibration records:
  //   speedup(t) = t / (1 + s * (t - 1))
  // s = 0 (the prior) reproduces the old linear assumption exactly.

  /// The Amdahl serial fraction of `backend`, in [0, 1]; 0 (linear
  /// scaling) when never fit.
  double serial_fraction(const std::string& backend) const;

  /// Override one backend's serial fraction (clamped into [0, 1]).
  void set_serial_fraction(const std::string& backend, double fraction);

  /// Predicted speedup of `backend` at `threads` workers under the fitted
  /// Amdahl term; 1 for threads <= 1.
  double thread_speedup(const std::string& backend, int threads) const;

  // --- Online observations --------------------------------------------

  /// Fold one measured end-to-end pipeline execution into the
  /// per-(backend x geometry-bucket) EWMA: `seconds` measured at
  /// `threads` effective workers is converted to a single-thread-
  /// equivalent seconds-per-pixel figure via thread_speedup, then blended
  /// 0.75 old / 0.25 new (the serving layer's EWMA convention).
  /// Non-finite or non-positive inputs are ignored. This is the serving
  /// feedback hook: ToneMapService calls it per full-quality completion
  /// when online calibration is on.
  void record_observation(const std::string& backend, int width, int height,
                          int threads, double seconds);

  /// Measured end-to-end estimate for `backend` at this geometry and
  /// thread count, from the bucket's EWMA; 0 when the bucket has no
  /// observation (the planner then falls back to the analytic estimate).
  double observed_seconds(const std::string& backend, int width, int height,
                          int threads) const;

  /// Observations folded into the (backend, geometry-bucket) EWMA; 0 when
  /// none. Coverage indicator for tools.
  std::uint64_t observation_count(const std::string& backend, int width,
                                  int height) const;

  /// Monotone counter bumped by every mutation (calibration, observation,
  /// any setter). Sessions that cached a plan re-plan only when this has
  /// moved — the cheap staleness check behind online re-planning.
  std::uint64_t revision() const;

  // --- Calibration from bench records ---------------------------------

  /// Fold measured records in: each single-thread record yields
  /// 2 * taps * width * height / seconds_per_frame MACs/s, and a backend's
  /// entry becomes its best observed figure (capability, not average).
  /// Multi-thread records additionally fit the backend's Amdahl serial
  /// fraction against the best single-thread record of the same geometry
  /// and tap count. Returns the number of backends whose throughput was
  /// updated.
  int calibrate(const std::vector<ThroughputRecord>& records);

  /// parse_throughput_jsonl + calibrate in one call.
  int calibrate_from_jsonl(std::istream& in);

  // --- Persistence -----------------------------------------------------

  /// The fingerprint snapshots are keyed by: cpu architecture + logical
  /// cpu count, e.g. "x86_64-c8". Calibration transfers between runs on
  /// the same class of host and is ignored elsewhere.
  static std::string host_fingerprint();

  /// Write the whole model (throughput, serial fractions, point-wise and
  /// bandwidth figures, every observation EWMA) as versioned JSONL, one
  /// record per line, first key "calibration", keyed by host_fingerprint().
  void save_snapshot(std::ostream& out) const;

  /// Apply a snapshot stream: records with a matching version and host
  /// fingerprint are applied, everything else (other hosts, other record
  /// kinds, malformed lines) is skipped. Returns the number of records
  /// applied.
  int load_snapshot(std::istream& in);

  /// Feed a mixed JSONL stream: bench_backend_throughput records
  /// calibrate throughput, calibration snapshot records load as in
  /// load_snapshot. Returns backends-calibrated + records-applied — what
  /// `--calibration FILE` accepts everywhere in the CLI.
  int absorb_jsonl(std::istream& in);

  /// The process-wide model estimate_cost and Planner::global() consult.
  static CostModel& global();

private:
  /// One (backend, bucket) observation EWMA: single-thread-equivalent
  /// seconds per pixel, plus the sample count that shaped it.
  struct Observation {
    double seconds_per_pixel = 0.0;
    std::uint64_t samples = 0;
  };

  void bump_revision();
  double serial_fraction_locked(const std::string& backend) const;
  double thread_speedup_locked(const std::string& backend,
                               int threads) const;

  mutable std::mutex mutex_;
  std::map<std::string, double> macs_per_second_;
  std::map<std::string, double> serial_fraction_;
  std::map<std::string, std::map<int, Observation>> observations_;
  double pointwise_ops_per_second_ = 0.0;
  double plane_bandwidth_bytes_per_second_ = 0.0;
  std::uint64_t revision_ = 0;
};

} // namespace tmhls::exec
