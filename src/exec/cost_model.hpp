// Measured per-backend MAC throughput — the calibration term behind
// Backend::estimate_cost's wall-time estimate and the seed of the ROADMAP's
// backend autotuner.
//
// The model is deliberately one number per backend: sustained single-thread
// MACs/second on the separable blur. It ships with priors measured once on
// the reference dev container, and is re-calibrated from the JSONL records
// bench_backend_throughput emits (run the bench on the deployment machine,
// feed the records back in — e.g. `tmhls_cli backends --calibration
// perf.jsonl`), so estimates track the hardware actually serving traffic.
#pragma once

#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace tmhls::exec {

/// One bench_backend_throughput measurement, as parsed from its JSONL
/// record stream.
struct ThroughputRecord {
  std::string backend;
  int threads = 1;
  int width = 0;
  int height = 0;
  int taps = 0;
  double seconds_per_frame = 0.0;
};

/// Parse a bench_backend_throughput JSONL stream (one record per line).
/// Lines of other benches and malformed lines are skipped, so a mixed
/// perf-trajectory file feeds in directly.
std::vector<ThroughputRecord> parse_throughput_jsonl(std::istream& in);

/// Per-backend sustained MAC throughput, thread-safe. Unknown backends
/// report 0 (no estimate) rather than a guess.
class CostModel {
public:
  /// Seeded with single-thread priors for the built-in backends, measured
  /// on the reference container (GCC 12, -O3, x86-64). Calibration
  /// replaces them with real measurements.
  CostModel();

  /// Sustained single-thread MACs/second of `backend`; 0 when unknown.
  double macs_per_second(const std::string& backend) const;

  /// Set or override one backend's throughput figure directly.
  void set_macs_per_second(const std::string& backend, double macs_per_s);

  /// Sustained point-wise stage arithmetic throughput (operations/second)
  /// pricing the pipeline's non-blur stages in estimate_pipeline_cost.
  /// Backend-invariant: the point-wise stages run the same scalar code
  /// whichever blur backend is selected. Ships as a prior; override with
  /// set_pointwise_ops_per_second from a measurement.
  double pointwise_ops_per_second() const;
  void set_pointwise_ops_per_second(double ops_per_s);

  /// Streaming plane bandwidth (bytes/second) pricing the inter-stage
  /// plane traffic the staged (non-fused) pipeline pays and a fused
  /// backend avoids. Ships as a prior; override with
  /// set_plane_bandwidth_bytes_per_second from a measurement.
  double plane_bandwidth_bytes_per_second() const;
  void set_plane_bandwidth_bytes_per_second(double bytes_per_s);

  /// Fold measured records in: each single-thread record yields
  /// 2 * taps * width * height / seconds_per_frame MACs/s, and a backend's
  /// entry becomes its best observed figure (capability, not average).
  /// Multi-thread records are ignored (the model is per-thread). Returns
  /// the number of backends updated.
  int calibrate(const std::vector<ThroughputRecord>& records);

  /// parse_throughput_jsonl + calibrate in one call.
  int calibrate_from_jsonl(std::istream& in);

  /// The process-wide model estimate_cost consults.
  static CostModel& global();

private:
  mutable std::mutex mutex_;
  std::map<std::string, double> macs_per_second_;
  double pointwise_ops_per_second_ = 0.0;
  double plane_bandwidth_bytes_per_second_ = 0.0;
};

} // namespace tmhls::exec
