#include "exec/backend.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "exec/cost_model.hpp"

namespace tmhls::exec {

BlurCost Backend::estimate_cost(int width, int height,
                                const tonemap::GaussianKernel& kernel,
                                const BlurContext& ctx) const {
  TMHLS_REQUIRE(width > 0 && height > 0,
                "estimate_cost: dimensions must be positive");
  const BackendCapabilities caps = capabilities();
  // Element width of the datapath this call configures: fixed-only
  // backends run at the context's configured format; dual-datapath
  // backends at their fixed width when the context selects it.
  int elem_bits = caps.data_bits;
  if (caps.fixed_datapath && !caps.float_datapath) {
    elem_bits = ctx.fixed.data.width();
  } else if (ctx.use_fixed && caps.dual_fixed_data_bits > 0) {
    elem_bits = caps.dual_fixed_data_bits;
  }
  BlurCost cost;
  cost.macs = 2.0 * static_cast<double>(kernel.taps()) *
              static_cast<double>(width) * static_cast<double>(height);
  const std::size_t plane_bytes = static_cast<std::size_t>(width) *
                                  static_cast<std::size_t>(height) *
                                  (static_cast<std::size_t>(elem_bits) / 8u);
  if (caps.streaming) {
    cost.buffer_bytes =
        tonemap::line_buffer_bytes(width, kernel.taps(), elem_bits);
    // Source read + destination write; intermediate rows never leave the
    // line buffer.
    cost.traffic_bytes = 2 * plane_bytes;
  } else {
    // Direct form keeps the whole intermediate plane...
    cost.buffer_bytes = plane_bytes;
    // ...which the second pass writes and re-reads through memory.
    cost.traffic_bytes = 4 * plane_bytes;
  }
  // Wall-time term from the measured per-MAC throughput, scaled over the
  // tiled worker count by the model's Amdahl term — linear (serial
  // fraction 0) until multi-thread calibration records have fit one.
  const CostModel& model = CostModel::global();
  const double mps = model.macs_per_second(name());
  if (mps > 0.0) {
    const int threads =
        caps.tiled_threads ? std::max(1, ctx.threads) : 1;
    cost.seconds = cost.macs / mps / model.thread_speedup(name(), threads);
  }
  return cost;
}

PipelineCost estimate_pipeline_cost(const Backend& backend, int width,
                                    int height,
                                    const tonemap::GaussianKernel& kernel,
                                    const BlurContext& ctx) {
  PipelineCost cost;
  cost.blur = backend.estimate_cost(width, height, kernel, ctx);
  const BackendCapabilities caps = backend.capabilities();
  const double pixels =
      static_cast<double>(width) * static_cast<double>(height);
  cost.pointwise_ops = kPipelinePointwiseOpsPerPixel * pixels;
  // Inter-stage traffic: a fused sweep touches only the input and output
  // planes (already the blur's own 2-plane figure); the staged pipeline
  // additionally round-trips every intermediate plane through memory.
  const std::size_t plane_bytes = static_cast<std::size_t>(width) *
                                  static_cast<std::size_t>(height) *
                                  sizeof(float);
  const std::size_t stage_bytes =
      caps.fused_pipeline ? 0 : kPipelineStagePlanes * plane_bytes;
  cost.traffic_bytes = cost.blur.traffic_bytes + stage_bytes;
  cost.seconds = cost.blur.seconds;
  const CostModel& model = CostModel::global();
  const double pointwise_throughput = model.pointwise_ops_per_second();
  if (pointwise_throughput > 0.0) {
    cost.seconds += cost.pointwise_ops / pointwise_throughput;
  }
  const double bandwidth = model.plane_bandwidth_bytes_per_second();
  if (bandwidth > 0.0 && stage_bytes > 0) {
    cost.seconds += static_cast<double>(stage_bytes) / bandwidth;
  }
  return cost;
}

bool Backend::can_run(const tonemap::GaussianKernel& kernel,
                      const BlurContext& ctx) const {
  const BackendCapabilities caps = capabilities();
  if (ctx.use_fixed ? !caps.fixed_datapath : !caps.float_datapath) {
    return false;
  }
  return caps.max_taps == 0 || kernel.taps() <= caps.max_taps;
}

} // namespace tmhls::exec
