#include "exec/backend.hpp"

#include "common/error.hpp"

namespace tmhls::exec {

BlurCost Backend::estimate_cost(int width, int height,
                                const tonemap::GaussianKernel& kernel,
                                const BlurContext& ctx) const {
  TMHLS_REQUIRE(width > 0 && height > 0,
                "estimate_cost: dimensions must be positive");
  const BackendCapabilities caps = capabilities();
  // Element width of the datapath this call configures: fixed-only
  // backends run at the context's configured format; dual-datapath
  // backends at their fixed width when the context selects it.
  int elem_bits = caps.data_bits;
  if (caps.fixed_datapath && !caps.float_datapath) {
    elem_bits = ctx.fixed.data.width();
  } else if (ctx.use_fixed && caps.dual_fixed_data_bits > 0) {
    elem_bits = caps.dual_fixed_data_bits;
  }
  BlurCost cost;
  cost.macs = 2.0 * static_cast<double>(kernel.taps()) *
              static_cast<double>(width) * static_cast<double>(height);
  if (caps.streaming) {
    cost.buffer_bytes =
        tonemap::line_buffer_bytes(width, kernel.taps(), elem_bits);
  } else {
    // Direct form keeps the whole intermediate plane.
    cost.buffer_bytes = static_cast<std::size_t>(width) *
                        static_cast<std::size_t>(height) *
                        (static_cast<std::size_t>(elem_bits) / 8u);
  }
  return cost;
}

} // namespace tmhls::exec
