// exec::Planner — the one front door for execution planning. Everything
// that used to be scattered across call sites (select_auto_backend ranking,
// Backend::can_run capability gating, PipelineOptions::make_executor's
// datapath snapping, per-layer thread clamping) now funnels through
// Planner::plan(), which answers one question: for THIS frame geometry and
// THIS request, which backend runs the blur, on how many threads, over how
// many row bands. serve, stream, video, tonemap::FramePipeline and the CLI
// all consume ExecutionPlans from here (via PipelineOptions::plan), so a
// policy change — a new cost term, a routing table from schedule search —
// lands in every layer at once.
//
// Plans choose scheduling, never bits: every plan of a float-datapath
// request produces output byte-identical to separable_float at one thread,
// whatever backend/threads/bands the planner picked. That invariant is
// what makes online re-planning safe mid-stream.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "exec/executor.hpp"

namespace tmhls::exec {

class CostModel;

/// The numeric-datapath request a plan resolves. `unspecified` follows the
/// backend: float for float-capable backends, fixed for fixed-only ones
/// (so naming streaming_fixed alone just works); an explicit value that
/// contradicts the backend's capabilities is an error at plan time.
enum class PlanDatapath {
  unspecified,
  float32,
  fixed_point,
};

const char* to_string(PlanDatapath datapath);

/// One planning request: frame geometry plus the caller's execution
/// constraints. The kernel rides alongside in plan() because capability
/// gating (tap bounds, fixed formats) depends on it.
struct PlanRequest {
  int width = 1024;
  int height = 768;
  /// Registry backend name, or the reserved "auto" (also the meaning of
  /// an empty string) for cost-ranked selection.
  std::string backend = "auto";
  PlanDatapath datapath = PlanDatapath::unspecified;
  /// Requested worker threads (the plan clamps to 1 for backends without
  /// the tiled_threads capability). Must be >= 1.
  int threads = 1;
  /// Fixed-point formats for fixed-datapath plans.
  tonemap::FixedBlurConfig fixed = tonemap::FixedBlurConfig::paper();
};

/// A resolved execution decision: which backend, how many threads, how
/// many row bands — plus the datapath configuration and the cost estimate
/// the decision was ranked on. Consumers either wrap it in an executor
/// (make_executor) or read the fields for reporting.
struct ExecutionPlan {
  std::shared_ptr<const Backend> backend;
  /// Effective worker threads (already clamped to the backend's
  /// capabilities).
  int threads = 1;
  /// Row bands for the tiled blur decomposition; 0 derives the band count
  /// from `threads` (the pre-schedule-search behaviour). The tiled runner
  /// spawns one worker per band, so bands > threads oversubscribes —
  /// finer bands load-balance better when the blur shares cores with the
  /// pipeline's point-wise stages. Output bits are band-invariant.
  int bands = 0;
  bool use_fixed = false;
  tonemap::FixedBlurConfig fixed = tonemap::FixedBlurConfig::paper();
  /// End-to-end pipeline seconds the plan was ranked on: the measured
  /// EWMA when the cost model has observations for this (backend,
  /// geometry bucket), the analytic estimate otherwise; 0 when neither
  /// exists (uncalibrated backend named explicitly).
  double predicted_seconds = 0.0;
  /// True when the backend was cost-ranked ("auto"), false when named.
  bool auto_selected = false;
  /// True when a ScheduleExplorer routing table dictated the choice.
  bool from_routing_table = false;
  /// CostModel::revision() at plan time — the staleness token sessions
  /// compare to decide whether re-planning could change anything.
  std::uint64_t model_revision = 0;

  /// The executor-layer options this plan configures.
  ExecutorOptions executor_options() const;

  /// Wrap the plan in a PipelineExecutor.
  PipelineExecutor make_executor() const;
};

/// One schedule-search result installed for a geometry bucket: the
/// measured-fastest (backend, threads, bands) for frames of that size.
struct RoutingEntry {
  int bucket = 0; ///< exec::geometry_bucket of the frames this covers
  std::string backend;
  int threads = 1;
  int bands = 0;
  /// Measured end-to-end pipeline seconds of the winning point.
  double measured_seconds = 0.0;
};

/// Bucket-keyed routing table, as emitted by exec::explore_schedules.
struct RoutingTable {
  std::vector<RoutingEntry> entries;

  /// The entry covering `bucket`, or nullptr.
  const RoutingEntry* find(int bucket) const;
};

/// The planning facade. Thread-safe; plan() may race with cost-model
/// updates and routing-table installs (each plan sees a consistent table
/// and whatever model state the moment offers — the revision token tells
/// callers when to re-plan).
class Planner {
public:
  /// Plan against `registry` and `model`; nullptr selects the globals.
  explicit Planner(const BackendRegistry* registry = nullptr,
                   CostModel* model = nullptr);

  /// Resolve one request. Named backends validate capabilities (a fixed
  /// request on a float-only backend, or an explicit float request on a
  /// fixed-only one, throws InvalidArgument with the same messages the
  /// old make_executor produced); "auto" ranks capable candidates by
  /// measured-then-analytic end-to-end cost, preferring an installed
  /// routing-table entry for the frame's geometry bucket.
  ExecutionPlan plan(const PlanRequest& request,
                     const tonemap::GaussianKernel& kernel) const;

  /// Install a schedule-search routing table; subsequent float-datapath
  /// "auto" plans for covered buckets follow it (entries whose backend
  /// cannot run the request fall back to cost ranking).
  void install_routing_table(RoutingTable table);

  /// Drop the routing table; "auto" returns to pure cost ranking.
  void clear_routing_table();

  /// True when a routing table is installed.
  bool has_routing_table() const;

  /// The process-wide planner every layer consumes plans from.
  static Planner& global();

private:
  const BackendRegistry& registry() const;
  CostModel& model() const;

  ExecutionPlan plan_auto(const PlanRequest& request,
                          const tonemap::GaussianKernel& kernel) const;

  const BackendRegistry* registry_;
  CostModel* model_;
  mutable std::mutex mutex_;
  std::optional<RoutingTable> routing_;
};

} // namespace tmhls::exec
