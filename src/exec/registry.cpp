#include "exec/registry.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "exec/backends.hpp"

namespace tmhls::exec {

void BackendRegistry::register_backend(const std::string& name,
                                       Factory factory) {
  TMHLS_REQUIRE(!name.empty(), "backend name must not be empty");
  TMHLS_REQUIRE(name != "auto",
                "backend name 'auto' is reserved for automatic selection");
  TMHLS_REQUIRE(factory != nullptr, "backend factory must not be null");
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [existing, entry] : entries_) {
    (void)entry;
    if (existing == name) {
      throw InvalidArgument("backend already registered: " + name);
    }
  }
  entries_.emplace_back(name, Entry{std::move(factory), nullptr});
}

bool BackendRegistry::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const auto& e) { return e.first == name; });
}

std::shared_ptr<const Backend> BackendRegistry::resolve(
    const std::string& name) const {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [existing, entry] : entries_) {
      if (existing != name) continue;
      if (!entry.instance) entry.instance = entry.factory();
      TMHLS_ASSERT(entry.instance != nullptr,
                   "backend factory returned null");
      return entry.instance;
    }
  }
  std::string known;
  for (const std::string& n : names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw InvalidArgument("unknown backend: " + name +
                        " (registered: " + known + ")");
}

std::vector<std::string> BackendRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    (void)entry;
    out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

BackendRegistry& BackendRegistry::global() {
  static BackendRegistry* registry = [] {
    auto* r = new BackendRegistry();
    register_builtin_backends(*r);
    return r;
  }();
  return *registry;
}

} // namespace tmhls::exec
