#include "exec/tiled.hpp"

#include <algorithm>
#include <barrier>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "tonemap/blur_passes.hpp"

namespace tmhls::exec {

namespace {

/// Run `work(band_index, barrier)` on `bands` worker threads; the barrier
/// is the inter-pass halo exchange. Returns false if thread spawning was
/// cut short by resource exhaustion — the computation's outputs are then
/// invalid and the caller must redo the work (e.g. single-threaded).
/// Otherwise the first exception thrown by any worker is rethrown here.
template <typename Work>
bool run_banded(int bands, Work&& work) {
  std::barrier<> sync(bands);
  std::exception_ptr failure;
  std::mutex failure_mutex;

  auto guarded = [&](int band) {
    try {
      work(band, sync);
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(failure_mutex);
        if (!failure) failure = std::current_exception();
      }
      // Keep the barrier protocol alive so sibling workers do not deadlock
      // waiting for this band's arrival; drop (never blocks) because the
      // failure may already be past the barrier.
      sync.arrive_and_drop();
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(bands));
  try {
    for (int b = 0; b < bands; ++b) {
      workers.emplace_back(guarded, b);
    }
  } catch (const std::system_error&) {
    // Substitute an arrival for every band that never spawned so the
    // spawned workers can pass the barrier (reading zero-initialised halo
    // rows — harmless, the result is discarded) and exit.
    for (int b = static_cast<int>(workers.size()); b < bands; ++b) {
      sync.arrive_and_drop();
    }
    for (std::thread& t : workers) t.join();
    return false;
  }
  for (std::thread& t : workers) t.join();
  if (failure) std::rethrow_exception(failure);
  return true;
}

int clamp_bands(int threads, int rows) {
  TMHLS_REQUIRE(threads >= 1, "tiled blur: threads must be >= 1");
  return std::min({threads, rows, kMaxTiledBands});
}

/// One horizontal or vertical float row-range pass (scalar or SIMD form).
using FloatRowPass = void (*)(const img::ImageF&, img::ImageF&,
                              const tonemap::GaussianKernel&, int, int);

/// The shared band scaffolding of the float blur: both the scalar and the
/// SIMD backends run the identical decomposition, halo exchange and
/// fallback, differing only in which pass primitives process the bands.
img::ImageF blur_tiled_float_with(const img::ImageF& src,
                                  const tonemap::GaussianKernel& kernel,
                                  int threads, FloatRowPass hpass,
                                  FloatRowPass vpass) {
  TMHLS_REQUIRE(src.channels() == 1, "blur expects a 1-channel image");
  const int h = src.height();
  const int bands = clamp_bands(threads, h);

  img::ImageF tmp(src.width(), h, 1);
  img::ImageF dst(src.width(), h, 1);
  const bool parallel_ok =
      bands > 1 && run_banded(bands, [&](int band, std::barrier<>& sync) {
        const RowBand r = row_band(h, bands, band);
        hpass(src, tmp, kernel, r.begin, r.end);
        // Halo exchange: the vertical pass reads up to `radius` rows of
        // `tmp` owned by neighbouring bands; the barrier publishes them.
        sync.arrive_and_wait();
        vpass(tmp, dst, kernel, r.begin, r.end);
      });
  if (!parallel_ok) {
    // bands == 1, or thread spawning was cut short (partial results in
    // tmp/dst are fully overwritten here).
    hpass(src, tmp, kernel, 0, h);
    vpass(tmp, dst, kernel, 0, h);
  }
  return dst;
}

// Default-lane-width adapters matching the FloatRowPass signature.
void hpass_simd_default(const img::ImageF& src, img::ImageF& dst,
                        const tonemap::GaussianKernel& kernel, int y_begin,
                        int y_end) {
  tonemap::blur_hpass_float_rows_simd(src, dst, kernel, y_begin, y_end);
}

void vpass_simd_default(const img::ImageF& tmp, img::ImageF& dst,
                        const tonemap::GaussianKernel& kernel, int y_begin,
                        int y_end) {
  tonemap::blur_vpass_float_rows_simd(tmp, dst, kernel, y_begin, y_end);
}

} // namespace

bool run_independent_bands(int bands, const std::function<void(int)>& work) {
  TMHLS_REQUIRE(bands >= 1, "run_independent_bands: bands must be >= 1");
  std::exception_ptr failure;
  std::mutex failure_mutex;

  auto guarded = [&](int band) {
    try {
      work(band);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(failure_mutex);
      if (!failure) failure = std::current_exception();
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(bands));
  try {
    for (int b = 0; b < bands; ++b) {
      workers.emplace_back(guarded, b);
    }
  } catch (const std::system_error&) {
    // No barrier protocol to keep alive: the spawned workers just finish
    // their (soon to be discarded) bands and exit.
    for (std::thread& t : workers) t.join();
    return false;
  }
  for (std::thread& t : workers) t.join();
  if (failure) std::rethrow_exception(failure);
  return true;
}

RowBand row_band(int rows, int bands, int band) {
  TMHLS_REQUIRE(rows >= 0 && bands >= 1 && band >= 0 && band < bands,
                "row_band: invalid decomposition");
  const int base = rows / bands;
  const int extra = rows % bands;
  RowBand r;
  r.begin = band * base + std::min(band, extra);
  r.end = r.begin + base + (band < extra ? 1 : 0);
  return r;
}

img::ImageF blur_tiled_float(const img::ImageF& src,
                             const tonemap::GaussianKernel& kernel,
                             int threads) {
  return blur_tiled_float_with(src, kernel, threads,
                               &tonemap::blur_hpass_float_rows,
                               &tonemap::blur_vpass_float_rows);
}

img::ImageF blur_tiled_simd(const img::ImageF& src,
                            const tonemap::GaussianKernel& kernel,
                            int threads) {
  return blur_tiled_float_with(src, kernel, threads, &hpass_simd_default,
                               &vpass_simd_default);
}

img::ImageF blur_tiled_fixed(const img::ImageF& src,
                             const tonemap::GaussianKernel& kernel,
                             const tonemap::FixedBlurConfig& cfg,
                             int threads) {
  TMHLS_REQUIRE(src.channels() == 1, "blur expects a 1-channel image");
  const int w = src.width();
  const int h = src.height();
  const int bands = clamp_bands(threads, h);
  const tonemap::FixedBlurPlan plan(kernel, cfg);

  std::vector<std::int64_t> qsrc(src.pixel_count());
  std::vector<std::int64_t> hout(src.pixel_count());
  img::ImageF dst(w, h, 1);
  const bool parallel_ok =
      bands > 1 && run_banded(bands, [&](int band, std::barrier<>& sync) {
        const RowBand r = row_band(h, bands, band);
        // Quantisation and the horizontal pass are row-local to the band.
        plan.quantise_rows(src, qsrc, r.begin, r.end);
        tonemap::blur_hpass_fixed_rows(qsrc, hout, w, h, plan, r.begin,
                                       r.end);
        sync.arrive_and_wait();
        tonemap::blur_vpass_fixed_rows(hout, dst, w, h, plan, r.begin,
                                       r.end);
      });
  if (!parallel_ok) {
    plan.quantise_rows(src, qsrc, 0, h);
    tonemap::blur_hpass_fixed_rows(qsrc, hout, w, h, plan, 0, h);
    tonemap::blur_vpass_fixed_rows(hout, dst, w, h, plan, 0, h);
  }
  return dst;
}

} // namespace tmhls::exec
