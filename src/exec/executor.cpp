#include "exec/executor.hpp"

#include "common/error.hpp"

namespace tmhls::exec {

void validate(const ExecutorOptions& options) {
  TMHLS_REQUIRE(options.threads >= 1,
                "ExecutorOptions::threads must be >= 1, got " +
                    std::to_string(options.threads));
}

PipelineExecutor::PipelineExecutor(std::shared_ptr<const Backend> backend,
                                   ExecutorOptions options)
    : backend_(std::move(backend)), options_(options) {
  TMHLS_REQUIRE(backend_ != nullptr, "executor needs a backend");
  validate(options_);
}

PipelineExecutor::PipelineExecutor(const std::string& backend_name,
                                   ExecutorOptions options,
                                   const BackendRegistry& registry)
    : PipelineExecutor(registry.resolve(backend_name), options) {}

int PipelineExecutor::effective_threads() const {
  return backend_->capabilities().tiled_threads ? options_.threads : 1;
}

img::ImageF PipelineExecutor::blur(const img::ImageF& intensity,
                                   const tonemap::GaussianKernel& kernel) const {
  return backend_->run_blur(intensity, kernel, context());
}

bool PipelineExecutor::can_run(const tonemap::GaussianKernel& kernel) const {
  return backend_->can_run(kernel, context());
}

BlurCost PipelineExecutor::estimate_cost(
    int width, int height, const tonemap::GaussianKernel& kernel) const {
  return backend_->estimate_cost(width, height, kernel, context());
}

BlurContext PipelineExecutor::context() const {
  BlurContext ctx;
  ctx.fixed = options_.fixed;
  ctx.threads = effective_threads();
  ctx.use_fixed = options_.use_fixed;
  return ctx;
}

std::shared_ptr<const Backend> select_auto_backend(
    int width, int height, const tonemap::GaussianKernel& kernel,
    const ExecutorOptions& options, const BackendRegistry& registry) {
  validate(options);
  std::shared_ptr<const Backend> best;
  bool best_has_time = false;
  double best_key = 0.0;
  for (const std::string& name : registry.names()) {
    const auto backend = registry.resolve(name);
    BlurContext ctx;
    ctx.fixed = options.fixed;
    ctx.use_fixed = options.use_fixed;
    ctx.threads =
        backend->capabilities().tiled_threads ? options.threads : 1;
    if (!backend->can_run(kernel, ctx)) continue;
    // Rank by the END-TO-END pipeline estimate, not the blur alone: the
    // point-wise term is backend-invariant (a constant offset), but a
    // fused backend additionally avoids the inter-stage plane traffic, a
    // real advantage a blur-only ranking cannot see. Uncalibrated
    // backends (no blur throughput figure) fall back to the MAC count
    // and sort after every timed candidate.
    const PipelineCost cost =
        estimate_pipeline_cost(*backend, width, height, kernel, ctx);
    const bool has_time = cost.blur.seconds > 0.0;
    const double key = has_time ? cost.seconds : cost.blur.macs;
    if (!best || (has_time && !best_has_time) ||
        (has_time == best_has_time && key < best_key)) {
      best = backend;
      best_has_time = has_time;
      best_key = key;
    }
  }
  TMHLS_REQUIRE(best != nullptr,
                "auto backend selection: no registered backend can run "
                "this request (datapath or kernel size unsupported)");
  return best;
}

} // namespace tmhls::exec
