#include "exec/executor.hpp"

#include "common/error.hpp"
#include "exec/planner.hpp"

namespace tmhls::exec {

void validate(const ExecutorOptions& options) {
  TMHLS_REQUIRE(options.threads >= 1,
                "ExecutorOptions::threads must be >= 1, got " +
                    std::to_string(options.threads));
  TMHLS_REQUIRE(options.bands >= 0,
                "ExecutorOptions::bands must be >= 0, got " +
                    std::to_string(options.bands));
}

PipelineExecutor::PipelineExecutor(std::shared_ptr<const Backend> backend,
                                   ExecutorOptions options)
    : backend_(std::move(backend)), options_(options) {
  TMHLS_REQUIRE(backend_ != nullptr, "executor needs a backend");
  validate(options_);
}

PipelineExecutor::PipelineExecutor(const std::string& backend_name,
                                   ExecutorOptions options,
                                   const BackendRegistry& registry)
    : PipelineExecutor(registry.resolve(backend_name), options) {}

int PipelineExecutor::effective_threads() const {
  return backend_->capabilities().tiled_threads ? options_.threads : 1;
}

img::ImageF PipelineExecutor::blur(const img::ImageF& intensity,
                                   const tonemap::GaussianKernel& kernel) const {
  return backend_->run_blur(intensity, kernel, context());
}

bool PipelineExecutor::can_run(const tonemap::GaussianKernel& kernel) const {
  return backend_->can_run(kernel, context());
}

BlurCost PipelineExecutor::estimate_cost(
    int width, int height, const tonemap::GaussianKernel& kernel) const {
  return backend_->estimate_cost(width, height, kernel, context());
}

BlurContext PipelineExecutor::context() const {
  BlurContext ctx;
  ctx.fixed = options_.fixed;
  ctx.threads = effective_threads();
  ctx.bands =
      backend_->capabilities().tiled_threads ? options_.bands : 0;
  ctx.use_fixed = options_.use_fixed;
  return ctx;
}

std::shared_ptr<const Backend> select_auto_backend(
    int width, int height, const tonemap::GaussianKernel& kernel,
    const ExecutorOptions& options, const BackendRegistry& registry) {
  validate(options);
  PlanRequest request;
  request.width = width;
  request.height = height;
  request.backend = "auto";
  request.datapath = options.use_fixed ? PlanDatapath::fixed_point
                                       : PlanDatapath::unspecified;
  request.threads = options.threads;
  request.fixed = options.fixed;
  // Route through the global planner when ranking over the global
  // registry, so an installed routing table applies here too.
  if (&registry == &BackendRegistry::global()) {
    return Planner::global().plan(request, kernel).backend;
  }
  return Planner(&registry).plan(request, kernel).backend;
}

} // namespace tmhls::exec
