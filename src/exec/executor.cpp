#include "exec/executor.hpp"

#include "common/error.hpp"

namespace tmhls::exec {

PipelineExecutor::PipelineExecutor(std::shared_ptr<const Backend> backend,
                                   ExecutorOptions options)
    : backend_(std::move(backend)), options_(options) {
  TMHLS_REQUIRE(backend_ != nullptr, "executor needs a backend");
  TMHLS_REQUIRE(options_.threads >= 1, "executor threads must be >= 1");
}

PipelineExecutor::PipelineExecutor(const std::string& backend_name,
                                   ExecutorOptions options,
                                   const BackendRegistry& registry)
    : PipelineExecutor(registry.resolve(backend_name), options) {}

int PipelineExecutor::effective_threads() const {
  return backend_->capabilities().tiled_threads ? options_.threads : 1;
}

img::ImageF PipelineExecutor::blur(const img::ImageF& intensity,
                                   const tonemap::GaussianKernel& kernel) const {
  return backend_->run_blur(intensity, kernel, context());
}

BlurCost PipelineExecutor::estimate_cost(
    int width, int height, const tonemap::GaussianKernel& kernel) const {
  return backend_->estimate_cost(width, height, kernel, context());
}

BlurContext PipelineExecutor::context() const {
  BlurContext ctx;
  ctx.fixed = options_.fixed;
  ctx.threads = effective_threads();
  ctx.use_fixed = options_.use_fixed;
  return ctx;
}

} // namespace tmhls::exec
