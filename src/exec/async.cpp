#include "exec/async.hpp"

#include <limits>
#include <optional>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "image/plane_pool.hpp"

namespace tmhls::exec {

void validate(const AsyncExecutorOptions& options) {
  TMHLS_REQUIRE(options.workers >= 1,
                "AsyncExecutorOptions::workers must be >= 1, got " +
                    std::to_string(options.workers));
  TMHLS_REQUIRE(options.queue_capacity >= 1,
                "AsyncExecutorOptions::queue_capacity must be >= 1, got " +
                    std::to_string(options.queue_capacity));
}

AsyncExecutor::AsyncExecutor(PipelineExecutor executor,
                             AsyncExecutorOptions options)
    : executor_(std::move(executor)), options_(options),
      inherited_recycler_(img::detail::current_recycler()) {
  validate(options_);
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  try {
    for (int i = 0; i < options_.workers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    // Thread spawn failure: release the workers already running, then
    // rethrow — a half-built pool must not leak threads.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    queue_not_empty_.notify_all();
    for (std::thread& w : workers_) w.join();
    throw;
  }
}

AsyncExecutor::~AsyncExecutor() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<img::ImageF> AsyncExecutor::submit(BlurRequest request) {
  std::future<img::ImageF> future;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    TMHLS_REQUIRE(!stopping_, "AsyncExecutor::submit after shutdown");
    queue_not_full_.wait(lock, [this] {
      return stopping_ ||
             queue_.size() <
                 static_cast<std::size_t>(options_.queue_capacity);
    });
    TMHLS_REQUIRE(!stopping_, "AsyncExecutor::submit after shutdown");
    Task task{std::move(request), std::promise<img::ImageF>{}};
    future = task.promise.get_future();
    queue_.push_back(std::move(task));
    ++submitted_;
  }
  queue_not_empty_.notify_one();
  return future;
}

std::size_t AsyncExecutor::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size() + running_;
}

AsyncExecutorStats AsyncExecutor::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  AsyncExecutorStats s;
  s.queued = queue_.size();
  s.running = running_;
  s.submitted = submitted_;
  s.completed = completed_;
  return s;
}

void AsyncExecutor::worker_loop() {
  // Workers run under the plane-pool scope of the thread that built this
  // executor, so blur results allocate from the same pool as every other
  // plane of that pipeline/shard (see inherited_recycler_).
  const img::detail::ScopedRecycler pool_scope(inherited_recycler_);
  for (;;) {
    std::optional<Task> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_not_empty_.wait(lock,
                            [this] { return stopping_ || !queue_.empty(); });
      // Shutdown drains the queue: every accepted request completes, so
      // futures handed out by submit() never dangle unresolved.
      if (queue_.empty()) return;
      task.emplace(std::move(queue_.front()));
      queue_.pop_front();
      ++running_;
    }
    queue_not_full_.notify_one();
    // Counters retire BEFORE the promise is satisfied (the service-layer
    // convention): a caller whose future.get() returned must also observe
    // the request counted completed in stats().
    bool retired = false;
    const auto retire = [this, &retired] {
      if (retired) return;
      retired = true;
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
      ++completed_;
    };
    try {
      // Fault site "exec.async.task": a delay stalls this executor with
      // the task counted as running (the stalled-executor scenario); a
      // throw surfaces through the task's future like any blur error.
      fault::inject("exec.async.task");
      img::ImageF result =
          executor_.blur(task->request.intensity, task->request.kernel);
      retire();
      task->promise.set_value(std::move(result));
    } catch (...) {
      retire();
      task->promise.set_exception(std::current_exception());
    }
  }
}

void validate(const ExecutorPoolOptions& options) {
  TMHLS_REQUIRE(options.executors >= 1,
                "ExecutorPoolOptions::executors must be >= 1, got " +
                    std::to_string(options.executors));
  validate(options.per_executor);
}

ExecutorPool::ExecutorPool(const PipelineExecutor& prototype,
                           ExecutorPoolOptions options)
    : options_(options) {
  validate(options_);
  shards_.reserve(static_cast<std::size_t>(options_.executors));
  for (int i = 0; i < options_.executors; ++i) {
    shards_.push_back(
        std::make_unique<AsyncExecutor>(prototype, options_.per_executor));
  }
}

std::future<img::ImageF> ExecutorPool::submit(BlurRequest request) {
  const std::size_t rotation =
      next_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  std::size_t shard = rotation;
  if (options_.routing == PoolRouting::least_loaded && shards_.size() > 1) {
    // Take the shard with the fewest outstanding requests among those
    // with a free queue slot (falling back to the overall fewest when
    // every queue is full, where submit() blocking IS the backpressure);
    // scanning from the rotation position makes ties fall back to
    // round-robin. The slot check keeps concurrent submitters that
    // snapshot the same loads from herding onto one shard and blocking
    // there while others idle.
    const auto capacity =
        static_cast<std::size_t>(options_.per_executor.queue_capacity);
    std::size_t best_any = rotation;
    std::size_t best_any_load = std::numeric_limits<std::size_t>::max();
    std::size_t best_free = rotation;
    std::size_t best_free_load = std::numeric_limits<std::size_t>::max();
    bool any_free = false;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const std::size_t index = (rotation + i) % shards_.size();
      const AsyncExecutorStats stats = shards_[index]->stats();
      const std::size_t load = stats.queued + stats.running;
      if (load < best_any_load) {
        best_any_load = load;
        best_any = index;
      }
      if (stats.queued < capacity && load < best_free_load) {
        best_free_load = load;
        best_free = index;
        any_free = true;
      }
    }
    shard = any_free ? best_free : best_any;
  }
  return shards_[shard]->submit(std::move(request));
}

AsyncExecutor& ExecutorPool::shard(int index) {
  TMHLS_REQUIRE(index >= 0 && index < shards(),
                "ExecutorPool::shard index out of range: " +
                    std::to_string(index));
  return *shards_[static_cast<std::size_t>(index)];
}

std::size_t ExecutorPool::in_flight() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->in_flight();
  return total;
}

ExecutorPoolStats ExecutorPool::stats() const {
  ExecutorPoolStats s;
  s.per_shard.reserve(shards_.size());
  for (const auto& shard : shards_) {
    s.per_shard.push_back(shard->stats());
    const AsyncExecutorStats& ss = s.per_shard.back();
    s.queued += ss.queued;
    s.running += ss.running;
    s.submitted += ss.submitted;
    s.completed += ss.completed;
  }
  return s;
}

std::vector<common::StatsSnapshot> snapshot(const ExecutorPoolStats& stats) {
  std::vector<common::StatsSnapshot> out;
  common::StatsSnapshot total;
  total.scope = "executor_pool";
  total.counter("queued", stats.queued);
  total.counter("running", stats.running);
  total.counter("submitted", stats.submitted);
  total.counter("completed", stats.completed);
  out.push_back(std::move(total));
  for (std::size_t i = 0; i < stats.per_shard.size(); ++i) {
    const AsyncExecutorStats& row = stats.per_shard[i];
    common::StatsSnapshot shard;
    shard.scope = "executor_pool.shard" + std::to_string(i);
    shard.counter("queued", row.queued);
    shard.counter("running", row.running);
    shard.counter("submitted", row.submitted);
    shard.counter("completed", row.completed);
    out.push_back(std::move(shard));
  }
  return out;
}

} // namespace tmhls::exec
