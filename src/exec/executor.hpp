// PipelineExecutor: the pipeline's handle to one selected backend plus its
// execution parameters (thread count, fixed-point formats). Constructed
// once and reused across frames — video and serving paths keep a
// persistent executor instead of re-resolving the backend per frame.
// This is the seam the scaling layers stack on: exec/async wraps it in a
// submit/future worker pool (AsyncExecutor, ExecutorPool) and serve/
// composes those into a frame-serving front with row-band blur sharding.
#pragma once

#include <memory>
#include <string>

#include "exec/backend.hpp"
#include "exec/registry.hpp"

namespace tmhls::exec {

/// Executor-level execution parameters.
struct ExecutorOptions {
  /// Worker threads for the tiled mode; clamped to 1 for backends without
  /// tiled_threads capability. Must be >= 1 (see validate).
  int threads = 1;
  /// Row bands for the tiled decomposition; 0 (default) lets the band
  /// count follow `threads`. Set by schedule-searched plans
  /// (exec::ExecutionPlan); see BlurContext::bands for the semantics.
  /// Must be >= 0 (see validate).
  int bands = 0;
  /// Select the fixed datapath of dual-datapath backends (hlscode).
  bool use_fixed = false;
  /// Fixed-point formats for fixed-datapath backends.
  tonemap::FixedBlurConfig fixed = tonemap::FixedBlurConfig::paper();
};

/// The one validation point for ExecutorOptions: throws InvalidArgument
/// naming the offending field and value unless threads >= 1 and
/// bands >= 0. Every consumer (PipelineExecutor, the planner, the async
/// layer) calls this instead of clamping or re-checking at its own call
/// site.
void validate(const ExecutorOptions& options);

class PipelineExecutor {
public:
  /// Wrap an already-resolved backend.
  explicit PipelineExecutor(std::shared_ptr<const Backend> backend,
                            ExecutorOptions options = {});

  /// Resolve `backend_name` through `registry` (default: the global one).
  explicit PipelineExecutor(const std::string& backend_name,
                            ExecutorOptions options = {},
                            const BackendRegistry& registry =
                                BackendRegistry::global());

  const Backend& backend() const { return *backend_; }
  const ExecutorOptions& options() const { return options_; }

  /// The thread count actually used: options().threads, clamped to 1 when
  /// the backend lacks the tiled_threads capability.
  int effective_threads() const;

  /// Execute the mask blur on a 1-channel intensity plane.
  img::ImageF blur(const img::ImageF& intensity,
                   const tonemap::GaussianKernel& kernel) const;

  /// Whether the backend accepts `kernel` at this executor's configuration
  /// (datapath, tap bounds, fixed formats) — Backend::can_run with this
  /// executor's context. Session objects (FramePipeline) gate on this at
  /// construction so capability errors fail fast instead of mid-stream.
  bool can_run(const tonemap::GaussianKernel& kernel) const;

  /// Analytic cost of one blur at this executor's configuration (datapath
  /// selection and fixed formats are taken from the options).
  BlurCost estimate_cost(int width, int height,
                         const tonemap::GaussianKernel& kernel) const;

private:
  /// The per-call context this executor hands its backend.
  BlurContext context() const;

  std::shared_ptr<const Backend> backend_;
  ExecutorOptions options_;
};

/// The cheapest capable backend for a blur request — what `--backend auto`
/// resolves to. A thin wrapper over exec::Planner (the one place the
/// ranking now lives; measured online EWMAs outrank analytic estimates,
/// uncalibrated backends sort last, ties break by the registry's sorted
/// name order). Kept for callers that only need the backend, not the full
/// ExecutionPlan. Throws InvalidArgument when no registered backend can
/// run the request.
std::shared_ptr<const Backend> select_auto_backend(
    int width, int height, const tonemap::GaussianKernel& kernel,
    const ExecutorOptions& options = {},
    const BackendRegistry& registry = BackendRegistry::global());

} // namespace tmhls::exec
