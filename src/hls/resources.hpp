// FPGA resource estimation for a scheduled loop — the "utilization
// estimates" section of a Vivado HLS report. Drives two things downstream:
// the BRAM fit check against the device, and the programmable-logic idle
// power ("bottomline") in Fig 8b, which the paper observes growing as the
// optimization steps enable more logic.
#pragma once

#include <cstdint>
#include <string>

#include "hls/loop.hpp"
#include "hls/scheduler.hpp"

namespace tmhls::hls {

/// Estimated device resources of one synthesised design.
struct ResourceEstimate {
  std::int64_t luts = 0;
  std::int64_t ffs = 0;
  std::int64_t dsps = 0;
  std::int64_t bram36 = 0; ///< 36 Kbit block RAMs

  ResourceEstimate& operator+=(const ResourceEstimate& o);
  friend ResourceEstimate operator+(ResourceEstimate a,
                                    const ResourceEstimate& b) {
    return a += b;
  }
};

/// Capacity of the target device's programmable logic.
struct DeviceCapacity {
  std::int64_t luts = 0;
  std::int64_t ffs = 0;
  std::int64_t dsps = 0;
  std::int64_t bram36 = 0;

  /// Zynq-7020 (the part on the ZC702 board the paper's rails match).
  static DeviceCapacity zynq7020();
  /// Zynq-7045 (ZC706), for headroom experiments.
  static DeviceCapacity zynq7045();
};

/// True if `need` fits inside `have` on every axis.
bool fits(const ResourceEstimate& need, const DeviceCapacity& have);

/// Utilisation of the scarcest resource, in [0, inf); > 1 means no fit.
double peak_utilisation(const ResourceEstimate& need,
                        const DeviceCapacity& have);

/// Estimate the resources of a loop under its schedule.
///
/// Functional units: a pipelined loop at initiation interval II must issue
/// `count / II` operations of each kind per cycle, so it instantiates
/// ceil(count * unroll / II) units; an unpipelined loop reuses one unit per
/// kind. BRAM: each array needs ceil(bits / 36 Kbit) blocks, and
/// partitioning can only round the per-bank count up.
ResourceEstimate estimate_resources(const Loop& loop,
                                    const ScheduleResult& schedule,
                                    const OperatorLibrary& library);

} // namespace tmhls::hls
