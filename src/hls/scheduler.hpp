// The HLS loop scheduler: computes the initiation interval, iteration
// latency and total cycle count of a loop under its pragma set — the model
// of what Vivado HLS does when it compiles a marked function.
//
// Pipelined loops:   cycles = depth + (trips - 1) * II
//   II = max(target_II, II_recurrence, II_memory)
//   II_recurrence = recurrence_length * latency(recurrence_op)
//     ("data dependency ... might limit this optimization", §III.B)
//   II_memory     = ceil(reads_per_iter / read_bandwidth) per array
//     ("hardware resources might limit this optimization")
// Unpipelined loops: cycles = trips * (chained op latencies + loop control)
//
// The same scheduler handles the paper's four hardware variants purely
// through their Loop descriptions; no per-variant special cases.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hls/loop.hpp"
#include "hls/operators.hpp"

namespace tmhls::hls {

/// Outcome of scheduling one loop.
struct ScheduleResult {
  std::string loop_name;
  bool pipelined = false;
  /// Achieved initiation interval (pipelined loops only).
  int ii = 0;
  /// The two II lower bounds, for the report.
  int ii_recurrence = 0;
  int ii_memory = 0;
  /// Latency of one iteration (pipeline depth when pipelined).
  int iteration_latency = 0;
  /// Iterations after unrolling.
  std::int64_t effective_trip_count = 0;
  /// Total cycles for the whole loop.
  std::int64_t total_cycles = 0;

  /// Which constraint set the II: "target", "recurrence" or "memory ports".
  std::string limiting_factor;
};

/// Schedules loops against an operator library.
class Scheduler {
public:
  explicit Scheduler(OperatorLibrary library);

  /// Schedule one loop. Throws InvalidArgument on malformed loops
  /// (non-positive trip count, unroll factor < 0, ...).
  ScheduleResult schedule(const Loop& loop) const;

  const OperatorLibrary& library() const { return library_; }

private:
  OperatorLibrary library_;
};

} // namespace tmhls::hls
