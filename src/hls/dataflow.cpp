#include "hls/dataflow.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/math.hpp"

namespace tmhls::hls {

DataflowSchedule schedule_dataflow(const std::vector<DataflowProcess>& chain,
                                   const Scheduler& scheduler) {
  TMHLS_REQUIRE(!chain.empty(), "dataflow region needs at least one process");

  DataflowSchedule region;
  std::int64_t slowest_cycles = 0;

  std::vector<double> rates;
  for (const DataflowProcess& p : chain) {
    const ScheduleResult s = scheduler.schedule(p.loop);
    const std::int64_t tokens = p.tokens > 0 ? p.tokens : p.loop.trip_count;
    TMHLS_REQUIRE(tokens > 0, "process must move at least one token");
    rates.push_back(static_cast<double>(s.total_cycles) /
                    static_cast<double>(tokens));
    if (s.total_cycles > slowest_cycles) {
      slowest_cycles = s.total_cycles;
      region.bottleneck = p.name;
    }
    region.resources +=
        estimate_resources(p.loop, s, scheduler.library());
    region.processes.push_back(s);
  }

  // The region finishes when the slowest process finishes, delayed by each
  // upstream process's start latency (one iteration: the first token).
  std::int64_t start_delay = 0;
  for (std::size_t i = 0; i + 1 < region.processes.size(); ++i) {
    start_delay += region.processes[i].iteration_latency;
  }
  region.total_cycles = slowest_cycles + start_delay;

  // FIFO sizing between consecutive processes: enough tokens to absorb the
  // rate mismatch over the consumer's start delay, at least 2 (ping-pong).
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    const double producer_rate = rates[i];
    const std::int64_t consumer_start =
        region.processes[i + 1].iteration_latency;
    const std::int64_t lead = producer_rate > 0.0
                                  ? static_cast<std::int64_t>(
                                        static_cast<double>(consumer_start) /
                                        producer_rate) +
                                        1
                                  : 1;
    region.fifo_depths.push_back(std::max<std::int64_t>(2, lead));
  }
  return region;
}

} // namespace tmhls::hls
