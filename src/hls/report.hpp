// Vivado-HLS-style synthesis report rendering. §III.B: "At each
// optimization step, the performance report obtained after the compilation
// has been analyzed to identify the bottleneck of the design." The report
// carries the schedule (II + its limiting factor), latency and utilisation
// estimates so that exactly that workflow can be followed with this model.
#pragma once

#include <string>

#include "hls/loop.hpp"
#include "hls/resources.hpp"
#include "hls/scheduler.hpp"

namespace tmhls::hls {

/// A complete report for one synthesised hardware function.
struct HlsReport {
  std::string function_name;
  double clock_hz = 0.0;
  ScheduleResult schedule;
  ResourceEstimate resources;
  DeviceCapacity device;

  /// Wall-clock execution estimate for the scheduled cycle count.
  double execution_seconds() const;

  /// Render the report as aligned text.
  std::string render() const;
};

/// Build a report by scheduling `loop` and estimating its resources.
HlsReport synthesize(const std::string& function_name, const Loop& loop,
                     const Scheduler& scheduler, double clock_hz,
                     const DeviceCapacity& device);

} // namespace tmhls::hls
