#include "hls/report.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/table.hpp"

namespace tmhls::hls {

double HlsReport::execution_seconds() const {
  TMHLS_REQUIRE(clock_hz > 0.0, "report needs a positive clock");
  return static_cast<double>(schedule.total_cycles) / clock_hz;
}

std::string HlsReport::render() const {
  std::ostringstream os;
  os << "== HLS synthesis report: " << function_name << " ==\n";
  os << "Target clock: " << format_si(clock_hz, 4) << "Hz\n\n";

  TextTable perf({"metric", "value"});
  perf.add_row({"pipelined", schedule.pipelined ? "yes" : "no"});
  if (schedule.pipelined) {
    perf.add_row({"initiation interval (II)", std::to_string(schedule.ii)});
    perf.add_row({"II bound: recurrence",
                  std::to_string(schedule.ii_recurrence)});
    perf.add_row({"II bound: memory ports",
                  std::to_string(schedule.ii_memory)});
    perf.add_row({"limited by", schedule.limiting_factor});
  }
  perf.add_row({"iteration latency",
                std::to_string(schedule.iteration_latency)});
  perf.add_row({"trip count", std::to_string(schedule.effective_trip_count)});
  perf.add_row({"total cycles", std::to_string(schedule.total_cycles)});
  perf.add_row({"estimated time", format_si(execution_seconds(), 4) + "s"});
  os << perf.render() << '\n';

  TextTable util({"resource", "used", "available", "utilisation"});
  auto row = [&util](const char* name, std::int64_t used,
                     std::int64_t avail) {
    const double pct =
        avail > 0 ? 100.0 * static_cast<double>(used) /
                        static_cast<double>(avail)
                  : 0.0;
    util.add_row({name, std::to_string(used), std::to_string(avail),
                  format_fixed(pct, 1) + " %"});
  };
  row("LUT", resources.luts, device.luts);
  row("FF", resources.ffs, device.ffs);
  row("DSP48", resources.dsps, device.dsps);
  row("BRAM36", resources.bram36, device.bram36);
  os << util.render();
  os << (fits(resources, device) ? "Design fits the device.\n"
                                 : "DESIGN DOES NOT FIT THE DEVICE.\n");
  return os.str();
}

HlsReport synthesize(const std::string& function_name, const Loop& loop,
                     const Scheduler& scheduler, double clock_hz,
                     const DeviceCapacity& device) {
  HlsReport report;
  report.function_name = function_name;
  report.clock_hz = clock_hz;
  report.schedule = scheduler.schedule(loop);
  report.resources =
      estimate_resources(loop, report.schedule, scheduler.library());
  report.device = device;
  return report;
}

} // namespace tmhls::hls
