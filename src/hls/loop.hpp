// The loop-nest intermediate representation the scheduler consumes.
//
// A hardware function is described as a perfectly-nested loop whose body is
// a bag of operations plus accesses to on-chip arrays. This is the level at
// which Vivado HLS reports its schedule ("for each clock cycle which
// operation is performed by the hardware module", §III.B) and at which the
// two pragmas act.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hls/operators.hpp"
#include "hls/pragmas.hpp"

namespace tmhls::hls {

/// An on-chip memory (BRAM buffer or register bank) accessed by the loop.
struct ArraySpec {
  std::string name;
  /// Total elements stored.
  std::int64_t elements = 0;
  /// Bits per element (32 for float, 16 for the paper's ap_fixed).
  int element_bits = 32;
  /// Ports available to the loop's reads per bank. A true-dual-port BRAM
  /// has 2; the streaming blur reserves one for the line-buffer writer, so
  /// the convolution reads see 1 per bank.
  int read_ports = 1;
  /// Elements packed per physical word (memory "reshaping": a 32-bit BRAM
  /// word holds two 16-bit pixels, doubling read bandwidth — the §III.C
  /// fixed-point win beyond shorter operators).
  int elems_per_word = 1;
  /// Bank count created by ARRAY_PARTITION (1 = unpartitioned).
  int partitions = 1;

  /// Reads the loop body performs on this array per iteration.
  std::int64_t reads_per_iter = 0;
  /// Writes per iteration.
  std::int64_t writes_per_iter = 0;

  /// Peak element throughput per cycle the banks can deliver.
  std::int64_t read_bandwidth_per_cycle() const {
    return static_cast<std::int64_t>(partitions) * read_ports * elems_per_word;
  }
};

/// One operation kind with its per-iteration multiplicity.
struct OpUse {
  OpKind kind = OpKind::int_op;
  std::int64_t count = 0;
};

/// A loop to schedule.
struct Loop {
  std::string name;
  /// Iterations of the (flattened) loop.
  std::int64_t trip_count = 0;
  /// Operations per iteration (excluding array reads/writes, which are
  /// described by `arrays` and costed as bram accesses).
  std::vector<OpUse> ops;
  /// On-chip arrays accessed by the body.
  std::vector<ArraySpec> arrays;
  /// Loop-carried dependency: the operation on the recurrence (e.g. the
  /// accumulator's add) and how many of them chain per iteration. With a
  /// fully-unrolled reduction the chain collapses into a tree and the
  /// recurrence length is 1 (the final accumulator update).
  OpKind recurrence_op = OpKind::fadd;
  int recurrence_length = 0; ///< 0 = no loop-carried dependency
  /// Directives attached to this loop.
  PragmaSet pragmas;
};

} // namespace tmhls::hls
