#include "hls/resources.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/math.hpp"

namespace tmhls::hls {

ResourceEstimate& ResourceEstimate::operator+=(const ResourceEstimate& o) {
  luts += o.luts;
  ffs += o.ffs;
  dsps += o.dsps;
  bram36 += o.bram36;
  return *this;
}

DeviceCapacity DeviceCapacity::zynq7020() {
  return DeviceCapacity{53200, 106400, 220, 140};
}

DeviceCapacity DeviceCapacity::zynq7045() {
  return DeviceCapacity{218600, 437200, 900, 545};
}

bool fits(const ResourceEstimate& need, const DeviceCapacity& have) {
  return need.luts <= have.luts && need.ffs <= have.ffs &&
         need.dsps <= have.dsps && need.bram36 <= have.bram36;
}

double peak_utilisation(const ResourceEstimate& need,
                        const DeviceCapacity& have) {
  TMHLS_REQUIRE(have.luts > 0 && have.ffs > 0 && have.dsps > 0 &&
                    have.bram36 > 0,
                "device capacity must be positive");
  double peak = 0.0;
  peak = std::max(peak, static_cast<double>(need.luts) /
                            static_cast<double>(have.luts));
  peak = std::max(peak, static_cast<double>(need.ffs) /
                            static_cast<double>(have.ffs));
  peak = std::max(peak, static_cast<double>(need.dsps) /
                            static_cast<double>(have.dsps));
  peak = std::max(peak, static_cast<double>(need.bram36) /
                            static_cast<double>(have.bram36));
  return peak;
}

ResourceEstimate estimate_resources(const Loop& loop,
                                    const ScheduleResult& schedule,
                                    const OperatorLibrary& library) {
  ResourceEstimate total;

  int unroll = loop.pragmas.unroll.factor;
  if (unroll == 0) unroll = static_cast<int>(loop.trip_count);
  if (unroll < 1) unroll = 1;

  // Functional units.
  const std::int64_t ii =
      schedule.pipelined ? std::max(1, schedule.ii) : 0;
  for (const OpUse& use : loop.ops) {
    if (use.count == 0) continue;
    const std::int64_t per_iter = use.count * unroll;
    const std::int64_t units =
        schedule.pipelined ? ceil_div(per_iter, ii) : 1;
    const OperatorInfo& oi = library.info(use.kind);
    total.luts += units * oi.luts;
    total.ffs += units * oi.ffs;
    total.dsps += units * oi.dsps;
  }

  // Control overhead: counters, FSM, AXI adapters — a base cost per loop.
  total.luts += 900;
  total.ffs += 1100;

  // Block RAM: bits per bank rounded up to whole BRAM36s, times banks.
  constexpr std::int64_t kBram36Bits = 36 * 1024;
  for (const ArraySpec& a : loop.arrays) {
    if (a.elements == 0) continue;
    const std::int64_t bank_elems = ceil_div(a.elements, a.partitions);
    const std::int64_t bank_bits = bank_elems * a.element_bits;
    total.bram36 += a.partitions * ceil_div(bank_bits, kBram36Bits);
  }
  return total;
}

} // namespace tmhls::hls
