// The HLS operator library: latency and resource cost of each operation a
// synthesised datapath can perform, at the target clock. The float
// latencies model Xilinx floating-point operator cores on Artix-class
// fabric at 100 MHz; fixed-point operations map to plain integer logic
// (§III.C: "allowing the use of simple hardware operators implementing
// integer arithmetic and improving speed, area and energy").
#pragma once

#include <cstdint>

namespace tmhls::hls {

/// Operation kinds a loop body can contain.
enum class OpKind {
  bram_read,        ///< read from an on-chip BRAM/register buffer
  bram_write,       ///< write to an on-chip buffer
  ddr_random_read,  ///< single-beat external-memory read over the bus
  ddr_random_write, ///< single-beat external-memory write over the bus
  fadd,             ///< floating-point add/subtract
  fmul,             ///< floating-point multiply
  fdiv,             ///< floating-point divide
  fixed_add,        ///< fixed-point (integer) add/subtract
  fixed_mul,        ///< fixed-point multiply
  int_op,           ///< index arithmetic / compare / loop control
};

const char* to_string(OpKind k);

/// Latency and resources of one operator instance.
struct OperatorInfo {
  int latency = 1; ///< cycles from operand to result
  int luts = 0;    ///< LUTs per instance
  int ffs = 0;     ///< flip-flops per instance
  int dsps = 0;    ///< DSP48 slices per instance
};

/// Immutable table of operator costs for a target device and clock.
class OperatorLibrary {
public:
  /// Cost of an operation kind.
  const OperatorInfo& info(OpKind kind) const;

  /// Replace the cost of one operation kind (used by the platform layer to
  /// inject bus latencies, and by ablation benches to sweep costs).
  OperatorLibrary with_op(OpKind kind, OperatorInfo info) const;

  /// Default library: Artix-7-class programmable logic at 100 MHz, Xilinx
  /// floating-point operator core latencies. External-memory costs default
  /// to a 100-cycle single-beat round trip and are normally overridden by
  /// the platform's DDR model.
  static OperatorLibrary artix7_100mhz();

private:
  static constexpr int kOpKinds = 10;
  OperatorInfo ops_[kOpKinds];
};

} // namespace tmhls::hls
