#include "hls/pragmas.hpp"

namespace tmhls::hls {

const char* to_string(PartitionMode m) {
  switch (m) {
    case PartitionMode::none: return "none";
    case PartitionMode::cyclic: return "cyclic";
    case PartitionMode::block: return "block";
    case PartitionMode::complete: return "complete";
  }
  return "?";
}

const char* to_string(AccessPattern p) {
  switch (p) {
    case AccessPattern::random: return "random";
    case AccessPattern::sequential: return "sequential";
  }
  return "?";
}

} // namespace tmhls::hls
