// SDSoC/Vivado-HLS compiler directives ("pragmas") as data.
//
// §III.B: "Compiler directives called pragmas can be used in SDSoC to guide
// the compilation... essentially controlling the following knobs: data
// motion network ... system parallelism". The two pragmas the paper adds
// are #pragma HLS PIPELINE and #pragma HLS ARRAY_PARTITION; we also model
// UNROLL (implied by pipelining an outer loop over a fixed inner loop) and
// the data-mover access pattern (random vs sequential), which is what
// separates the "Marked HW function" row from "Sequential memory accesses".
#pragma once

namespace tmhls::hls {

/// #pragma HLS PIPELINE — overlap loop iterations at a target initiation
/// interval. "Vivado HLS performs this operation trying to minimize the
/// initiation interval, i.e. the number of clock cycles necessary between
/// consecutive loop iterations."
struct PipelinePragma {
  bool enabled = false;
  /// Requested II; the achieved II can be larger when data dependencies or
  /// memory ports limit it (exactly the paper's caveat).
  int target_ii = 1;
};

/// #pragma HLS ARRAY_PARTITION — split an array across independent memory
/// banks to multiply the available ports.
enum class PartitionMode {
  none,     ///< single memory
  cyclic,   ///< element i -> bank (i mod factor)
  block,    ///< contiguous chunks per bank
  complete, ///< fully scattered into registers
};

struct ArrayPartitionPragma {
  PartitionMode mode = PartitionMode::none;
  int factor = 1;
};

/// #pragma HLS UNROLL — replicate the loop body `factor` times.
struct UnrollPragma {
  int factor = 1; ///< 1 = no unrolling; 0 = full unroll
};

/// Data-mover access pattern between the accelerator and external memory
/// (the SDSoC data-motion-network knob).
enum class AccessPattern {
  random,     ///< single-beat bus transactions per element (AXI-GP style)
  sequential, ///< burst DMA streaming (AXI-DMA style)
};

/// The full set of directives attached to one hardware loop.
struct PragmaSet {
  PipelinePragma pipeline;
  ArrayPartitionPragma partition;
  UnrollPragma unroll;
  AccessPattern access = AccessPattern::random;
};

const char* to_string(PartitionMode m);
const char* to_string(AccessPattern p);

} // namespace tmhls::hls
