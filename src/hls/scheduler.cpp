#include "hls/scheduler.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/math.hpp"

namespace tmhls::hls {

Scheduler::Scheduler(OperatorLibrary library) : library_(library) {}

ScheduleResult Scheduler::schedule(const Loop& loop) const {
  TMHLS_REQUIRE(loop.trip_count > 0, "loop trip count must be positive");
  TMHLS_REQUIRE(loop.pragmas.unroll.factor >= 0,
                "unroll factor must be >= 0 (0 = full)");
  TMHLS_REQUIRE(loop.recurrence_length >= 0,
                "recurrence length must be >= 0");

  // Apply UNROLL: factor N divides the trip count and multiplies the body.
  int unroll = loop.pragmas.unroll.factor;
  if (unroll == 0) unroll = static_cast<int>(loop.trip_count); // full
  if (unroll < 1) unroll = 1;
  const std::int64_t trips = ceil_div(loop.trip_count, unroll);

  ScheduleResult r;
  r.loop_name = loop.name;
  r.effective_trip_count = trips;

  // Iteration latency: the body's operation chain. Unpipelined hardware
  // executes the chained ops back to back; pipelined hardware has the same
  // value as its pipeline depth. Memory reads/writes contribute through
  // their port-constrained issue slots plus access latency.
  std::int64_t chain = 0;
  for (const OpUse& use : loop.ops) {
    TMHLS_REQUIRE(use.count >= 0, "op count must be >= 0");
    chain += static_cast<std::int64_t>(library_.info(use.kind).latency) *
             use.count * unroll;
  }
  for (const ArraySpec& a : loop.arrays) {
    TMHLS_REQUIRE(a.read_ports >= 1 && a.elems_per_word >= 1 &&
                      a.partitions >= 1,
                  "array spec fields must be >= 1");
    TMHLS_REQUIRE(a.reads_per_iter >= 0 && a.writes_per_iter >= 0,
                  "array access counts must be >= 0");
  }
  const int bram_read_latency = library_.info(OpKind::bram_read).latency;
  const int bram_write_latency = library_.info(OpKind::bram_write).latency;

  if (!loop.pragmas.pipeline.enabled) {
    // Without pipelining every operation executes back to back, so each
    // on-chip access pays its full latency in the chain.
    std::int64_t iter_latency = chain + 1 /*loop control*/;
    for (const ArraySpec& a : loop.arrays) {
      iter_latency += a.reads_per_iter * unroll * bram_read_latency;
      iter_latency += a.writes_per_iter * unroll * bram_write_latency;
    }
    r.pipelined = false;
    r.iteration_latency = static_cast<int>(iter_latency);
    r.total_cycles = trips * iter_latency;
    r.limiting_factor = "not pipelined";
    return r;
  }

  // Pipelined: II bounded by the loop-carried recurrence and memory ports.
  int ii_rec = 1;
  if (loop.recurrence_length > 0) {
    ii_rec = loop.recurrence_length *
             library_.info(loop.recurrence_op).latency;
  }
  std::int64_t ii_mem = 1;
  for (const ArraySpec& a : loop.arrays) {
    const std::int64_t reads = a.reads_per_iter * unroll;
    if (reads == 0) continue;
    ii_mem = std::max(ii_mem, ceil_div(reads, a.read_bandwidth_per_cycle()));
  }
  const int target = std::max(1, loop.pragmas.pipeline.target_ii);
  const int ii = std::max({target, ii_rec, static_cast<int>(ii_mem)});

  // Pipeline depth: the longest operation chain of one iteration, counting
  // each distinct op kind's latency once per chain stage. For a reduction
  // collapsed to a tree the chain value already reflects the unrolled body;
  // the depth only affects the fill/drain term so a simple upper bound —
  // memory latency + the per-kind latencies — is sufficient and stable.
  std::int64_t depth = bram_read_latency;
  for (const OpUse& use : loop.ops) {
    if (use.count > 0) depth += library_.info(use.kind).latency;
  }
  depth = std::max<std::int64_t>(depth, ii);

  r.pipelined = true;
  r.ii = ii;
  r.ii_recurrence = ii_rec;
  r.ii_memory = static_cast<int>(ii_mem);
  r.iteration_latency = static_cast<int>(depth);
  r.total_cycles = depth + (trips - 1) * ii;
  if (ii == target && ii > ii_rec && ii > ii_mem) {
    r.limiting_factor = "target";
  } else if (ii_rec >= static_cast<int>(ii_mem) && ii == ii_rec) {
    r.limiting_factor = "recurrence";
  } else if (ii == static_cast<int>(ii_mem)) {
    r.limiting_factor = "memory ports";
  } else {
    r.limiting_factor = "target";
  }
  return r;
}

} // namespace tmhls::hls
