// Dataflow composition — the #pragma HLS DATAFLOW model.
//
// A dataflow region runs several loops ("processes") concurrently,
// connected by FIFO streams: the region's throughput is set by its slowest
// process, and its latency by the pipeline of processes. This is the
// construct behind the fused two-pass blur extension and, more generally,
// behind any streaming accelerator chain (blur -> masking -> ...).
//
// Model:
//   region II (per token)   = max over processes of their effective
//                             cycles-per-token
//   region total cycles     = max process total + sum of the others' fill
//                             latencies (each process starts once its
//                             predecessor emits its first token)
//   FIFO depth requirement  = the token lead a producer can build up
//                             before its consumer starts draining.
#pragma once

#include <string>
#include <vector>

#include "hls/resources.hpp"
#include "hls/scheduler.hpp"

namespace tmhls::hls {

/// One process of a dataflow region: a scheduled loop plus the number of
/// stream tokens it consumes/produces over its lifetime.
struct DataflowProcess {
  std::string name;
  Loop loop;
  /// Tokens this process produces (defaults to its trip count).
  std::int64_t tokens = 0;
};

/// The composed region's schedule.
struct DataflowSchedule {
  std::vector<ScheduleResult> processes;
  /// Cycles from first input token to last output token.
  std::int64_t total_cycles = 0;
  /// The slowest process (region bottleneck).
  std::string bottleneck;
  /// Combined resources (every process is live concurrently).
  ResourceEstimate resources;
  /// Suggested FIFO depth between consecutive processes, in tokens.
  std::vector<std::int64_t> fifo_depths;
};

/// Schedule a chain of processes connected process[i] -> process[i+1].
/// Throws InvalidArgument on an empty chain.
DataflowSchedule schedule_dataflow(const std::vector<DataflowProcess>& chain,
                                   const Scheduler& scheduler);

} // namespace tmhls::hls
