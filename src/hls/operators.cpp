#include "hls/operators.hpp"

#include "common/error.hpp"

namespace tmhls::hls {

const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::bram_read: return "bram_read";
    case OpKind::bram_write: return "bram_write";
    case OpKind::ddr_random_read: return "ddr_random_read";
    case OpKind::ddr_random_write: return "ddr_random_write";
    case OpKind::fadd: return "fadd";
    case OpKind::fmul: return "fmul";
    case OpKind::fdiv: return "fdiv";
    case OpKind::fixed_add: return "fixed_add";
    case OpKind::fixed_mul: return "fixed_mul";
    case OpKind::int_op: return "int_op";
  }
  return "?";
}

const OperatorInfo& OperatorLibrary::info(OpKind kind) const {
  const auto idx = static_cast<int>(kind);
  TMHLS_ASSERT(idx >= 0 && idx < kOpKinds, "bad OpKind");
  return ops_[idx];
}

OperatorLibrary OperatorLibrary::with_op(OpKind kind,
                                         OperatorInfo info) const {
  OperatorLibrary copy = *this;
  copy.ops_[static_cast<int>(kind)] = info;
  return copy;
}

OperatorLibrary OperatorLibrary::artix7_100mhz() {
  OperatorLibrary lib;
  auto set = [&lib](OpKind k, OperatorInfo oi) {
    lib.ops_[static_cast<int>(k)] = oi;
  };
  // Latencies: Xilinx LogiCORE floating-point operator figures at ~100 MHz
  // on Artix-class fabric; resources per instance.
  set(OpKind::bram_read, {2, 10, 10, 0});
  set(OpKind::bram_write, {1, 10, 10, 0});
  set(OpKind::ddr_random_read, {100, 50, 80, 0});
  set(OpKind::ddr_random_write, {100, 50, 80, 0});
  set(OpKind::fadd, {5, 220, 180, 2});
  set(OpKind::fmul, {3, 120, 150, 3});
  set(OpKind::fdiv, {28, 800, 900, 0});
  set(OpKind::fixed_add, {1, 16, 16, 0});
  set(OpKind::fixed_mul, {1, 30, 40, 1});
  set(OpKind::int_op, {1, 12, 8, 0});
  return lib;
}

} // namespace tmhls::hls
