// The accelerator kernels in synthesizable (Vivado-HLS) style — the form
// of the paper's actual hardware function after the §III.B restructuring.
//
// Each kernel is a streaming top function: pixels enter and leave through
// Stream<> channels in raster order (the sequential access pattern of
// Fig 4); neighbourhoods are reconstructed on chip with a ShiftReg
// (horizontal pass) or a LineBuffer (vertical pass). TMHLS_PRAGMA_HLS
// markers show where the paper's two pragmas sit.
//
// Functional contract: bit-identical to the golden models in src/tonemap —
// `blur_streaming_float` for the float kernels and `blur_streaming_fixed`
// with the paper's ap_fixed<16,2> config for the fixed kernels. The
// hlscode tests enforce this equivalence; it is what guarantees that
// results measured on the golden models transfer to the synthesizable
// source.
#pragma once

#include <cstdint>
#include <span>

#include "fixed/fixed.hpp"
#include "hlscode/stream.hpp"
#include "image/image.hpp"
#include "tonemap/kernel.hpp"

namespace tmhls::hlscode {

/// Largest kernel the synthesizable source supports: HLS needs static
/// array bounds. radius <= 79 covers the paper's 79-tap workload twice.
constexpr int kMaxTaps = 159;

/// Horizontal blur pass: reads width*height pixels in raster order from
/// `in`, writes the row-blurred pixels to `out`. Clamp-to-edge borders.
/// `weights` holds 2*radius+1 taps (taps <= kMaxTaps).
void blur_pass_horizontal_float(Stream<float>& in, Stream<float>& out,
                                int width, int height,
                                std::span<const float> weights);

/// Vertical blur pass with an on-chip line buffer of `taps` rows.
void blur_pass_vertical_float(Stream<float>& in, Stream<float>& out,
                              int width, int height,
                              std::span<const float> weights);

/// The complete accelerated function: horizontal pass into an internal
/// stream consumed by the vertical pass (in hardware: two dataflow
/// processes). Equivalent to tonemap::blur_streaming_float bit-for-bit.
void gaussian_blur_top_float(Stream<float>& in, Stream<float>& out,
                             int width, int height,
                             std::span<const float> weights);

/// The paper's 16-bit datapath element type.
using Pixel16 = fixed::PaperFixed;

/// Fixed-point horizontal pass (ap_fixed<16,2> datapath, §III.C).
void blur_pass_horizontal_fixed(Stream<Pixel16>& in, Stream<Pixel16>& out,
                                int width, int height,
                                std::span<const Pixel16> weights);

/// Fixed-point vertical pass.
void blur_pass_vertical_fixed(Stream<Pixel16>& in, Stream<Pixel16>& out,
                              int width, int height,
                              std::span<const Pixel16> weights);

/// Complete fixed-point accelerated function.
void gaussian_blur_top_fixed(Stream<Pixel16>& in, Stream<Pixel16>& out,
                             int width, int height,
                             std::span<const Pixel16> weights);

// --- Host-side testbench drivers (the SDSoC software stub's role) --------

/// Stream a 1-channel image through the float kernel and collect the
/// result — what the generated software stub + data movers do at run time.
img::ImageF run_blur_float(const img::ImageF& src,
                           const tonemap::GaussianKernel& kernel);

/// Stream through the fixed-point kernel (quantising at the boundary, as
/// the bus-aligned 16-bit interface does).
img::ImageF run_blur_fixed(const img::ImageF& src,
                           const tonemap::GaussianKernel& kernel);

} // namespace tmhls::hlscode
