// Synthesizable-style streaming primitives, modelled on Vivado HLS's
// hls::stream / line-buffer idioms.
//
// The paper's accelerator source is C++ written in the restricted style
// Vivado HLS can compile to hardware (§III.A: "the SDSoC compiler invokes
// Xilinx Vivado HLS to compile synthesizable C/C++ functions into
// programmable logic"). This header provides host-executable equivalents
// of the standard building blocks so the kernels in blur_kernels.hpp read
// like (and could be ported 1:1 to) real HLS sources:
//
//   Stream<T>     ~ hls::stream<T>      (bounded FIFO)
//   ShiftReg<T,N> ~ ap_shift_reg<T,N>   (horizontal sliding window)
//   LineBuffer<T> ~ hls::LineBuffer     (vertical sliding window of rows)
//
// On the host these are plain data structures; the TMHLS_PRAGMA_HLS macro
// marks where the #pragma HLS directives sit in the synthesizable source.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "common/error.hpp"

/// Marks the position of a #pragma HLS directive in synthesizable code.
/// Expands to nothing on the host; kept as documentation-in-code so the
/// kernel bodies match what SDSoC would compile.
#define TMHLS_PRAGMA_HLS(directive)

namespace tmhls::hlscode {

/// Bounded FIFO channel equivalent to hls::stream<T>. Reading an empty
/// stream or overfilling a bounded one is a programming error in a
/// dataflow design, so both fault via TMHLS_ASSERT (in hardware they would
/// deadlock or drop data).
template <typename T>
class Stream {
public:
  /// depth == 0 means unbounded (host convenience); synthesizable streams
  /// always declare a finite depth.
  explicit Stream(std::size_t depth = 0) : depth_(depth) {}

  /// True if no element is waiting.
  bool empty() const { return fifo_.empty(); }

  /// True if a bounded stream has reached its depth.
  bool full() const { return depth_ != 0 && fifo_.size() >= depth_; }

  /// Elements currently queued.
  std::size_t size() const { return fifo_.size(); }

  /// Blocking write (hardware would stall the producer).
  void write(const T& value) {
    TMHLS_ASSERT(!full(), "stream overflow: producer outran consumer");
    fifo_.push_back(value);
  }

  /// Blocking read (hardware would stall the consumer).
  T read() {
    TMHLS_ASSERT(!fifo_.empty(), "stream underflow: read from empty stream");
    T value = fifo_.front();
    fifo_.pop_front();
    return value;
  }

private:
  std::size_t depth_;
  std::deque<T> fifo_;
};

/// Fixed-length shift register equivalent to ap_shift_reg: shift() pushes a
/// new sample in at the highest index and returns nothing; operator[] reads
/// a tap. Synthesizes to a chain of registers (complete partitioning).
template <typename T, int N>
class ShiftReg {
  static_assert(N >= 1, "shift register needs at least one stage");

public:
  ShiftReg() : regs_(static_cast<std::size_t>(N)) {}

  /// Shift every stage down by one and insert `value` at the top.
  void shift(const T& value) {
    for (int i = 0; i + 1 < N; ++i) {
      regs_[static_cast<std::size_t>(i)] = regs_[static_cast<std::size_t>(i + 1)];
    }
    regs_[static_cast<std::size_t>(N - 1)] = value;
  }

  /// Read tap i (0 = oldest sample).
  const T& operator[](int i) const {
    TMHLS_ASSERT(i >= 0 && i < N, "shift register tap out of range");
    return regs_[static_cast<std::size_t>(i)];
  }

  /// Fill every stage with `value` (edge pre-load).
  void fill(const T& value) {
    for (auto& r : regs_) r = value;
  }

  static constexpr int length() { return N; }

private:
  std::vector<T> regs_;
};

/// Slot-addressed line buffer: the BRAM structure of Fig 4, `rows` banks of
/// `width` samples. Kernels address banks with the standard HLS idiom
/// (slot = logical_row % rows), which synthesizes to a modulo counter plus
/// one BRAM bank per row — the structure ARRAY_PARTITION then splits.
template <typename T>
class LineBuffer {
public:
  LineBuffer(int rows, int width)
      : rows_(rows), width_(width),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(width)) {
    TMHLS_REQUIRE(rows >= 1 && width >= 1,
                  "line buffer needs positive geometry");
  }

  int rows() const { return rows_; }
  int width() const { return width_; }

  /// Read column x of bank `slot`.
  const T& at(int slot, int x) const {
    TMHLS_ASSERT(slot >= 0 && slot < rows_, "line buffer slot out of range");
    TMHLS_ASSERT(x >= 0 && x < width_, "line buffer column out of range");
    return data_[static_cast<std::size_t>(slot) *
                     static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(x)];
  }

  /// Write column x of bank `slot`.
  void write(int slot, int x, const T& value) {
    TMHLS_ASSERT(slot >= 0 && slot < rows_, "line buffer slot out of range");
    TMHLS_ASSERT(x >= 0 && x < width_, "line buffer column out of range");
    data_[static_cast<std::size_t>(slot) *
              static_cast<std::size_t>(width_) +
          static_cast<std::size_t>(x)] = value;
  }

private:
  int rows_;
  int width_;
  std::vector<T> data_;
};

} // namespace tmhls::hlscode
