#include "hlscode/blur_kernels.hpp"

#include <vector>

#include "common/error.hpp"

namespace tmhls::hlscode {

namespace {

int clamp_index(int v, int limit) {
  return v < 0 ? 0 : (v >= limit ? limit - 1 : v);
}

// Generic horizontal pass: works for float and for the ap_fixed-style
// Pixel16 (whose operator* / operator+ requantise exactly like the 16-bit
// hardware datapath). Each input pixel is read from the stream exactly
// once; edge clamping duplicates values inside the window registers, never
// re-reads the stream — the property that makes the access pattern purely
// sequential (Fig 4).
template <typename T>
void h_pass(Stream<T>& in, Stream<T>& out, int width, int height,
            std::span<const T> weights) {
  const int taps = static_cast<int>(weights.size());
  const int radius = (taps - 1) / 2;
  TMHLS_REQUIRE(taps >= 1 && taps <= kMaxTaps && taps % 2 == 1,
                "taps must be odd and within kMaxTaps");
  TMHLS_REQUIRE(width >= 1 && height >= 1, "geometry must be positive");

  // In the synthesizable source this is `T window[kMaxTaps];`
  // TMHLS_PRAGMA_HLS(array_partition variable = window complete)
  std::vector<T> window(static_cast<std::size_t>(taps));

  for (int y = 0; y < height; ++y) {
    int next_x = 0; // next row pixel to pull from the stream
    T last{};
    // Advance the stream to row pixel `idx` (idx is nondecreasing),
    // holding the last pixel once the row is exhausted (right-edge clamp).
    auto pixel_at = [&](int idx) {
      while (next_x <= idx && next_x < width) {
        last = in.read();
        ++next_x;
      }
      return last;
    };
    // Pre-fill centred on x = 0 (left-edge clamp duplicates pixel 0).
    for (int i = 0; i < taps; ++i) {
      window[static_cast<std::size_t>(i)] =
          pixel_at(clamp_index(i - radius, width));
    }
    for (int x = 0; x < width; ++x) {
      TMHLS_PRAGMA_HLS(pipeline II = 1)
      T acc{};
      for (int i = 0; i < taps; ++i) {
        TMHLS_PRAGMA_HLS(unroll)
        acc = acc + weights[static_cast<std::size_t>(i)] *
                        window[static_cast<std::size_t>(i)];
      }
      out.write(acc);
      for (int i = 0; i + 1 < taps; ++i) {
        window[static_cast<std::size_t>(i)] =
            window[static_cast<std::size_t>(i + 1)];
      }
      window[static_cast<std::size_t>(taps - 1)] =
          pixel_at(clamp_index(x + radius + 1, width));
    }
  }
}

// Generic vertical pass with an on-chip line buffer of `taps` rows,
// addressed by logical row modulo taps (the standard HLS line-buffer
// idiom). Tap i of output row y reads logical row clamp(y + i - radius),
// which is always resident: rows evict only once they can no longer be
// referenced.
template <typename T>
void v_pass(Stream<T>& in, Stream<T>& out, int width, int height,
            std::span<const T> weights) {
  const int taps = static_cast<int>(weights.size());
  const int radius = (taps - 1) / 2;
  TMHLS_REQUIRE(taps >= 1 && taps <= kMaxTaps && taps % 2 == 1,
                "taps must be odd and within kMaxTaps");
  TMHLS_REQUIRE(width >= 1 && height >= 1, "geometry must be positive");

  // In the synthesizable source: `T lines[kMaxTaps][MAX_WIDTH];`
  // TMHLS_PRAGMA_HLS(array_partition variable = lines cyclic factor = 2 dim = 1)
  LineBuffer<T> lines(taps, width);
  int received = -1; // highest logical row pulled from the stream

  auto ensure_row = [&](int logical) {
    while (received < logical && received + 1 < height) {
      ++received;
      const int slot = received % taps;
      for (int x = 0; x < width; ++x) {
        lines.write(slot, x, in.read());
      }
    }
  };

  for (int y = 0; y < height; ++y) {
    ensure_row(clamp_index(y + radius, height));
    for (int x = 0; x < width; ++x) {
      TMHLS_PRAGMA_HLS(pipeline II = 1)
      T acc{};
      for (int i = 0; i < taps; ++i) {
        TMHLS_PRAGMA_HLS(unroll)
        const int logical = clamp_index(y + i - radius, height);
        acc = acc + weights[static_cast<std::size_t>(i)] *
                        lines.at(logical % taps, x);
      }
      out.write(acc);
    }
  }
}

template <typename T>
void top(Stream<T>& in, Stream<T>& out, int width, int height,
         std::span<const T> weights) {
  // TMHLS_PRAGMA_HLS(dataflow)
  // The intermediate stream buffers the horizontal pass's lead over the
  // vertical pass (up to radius+1 rows before the first output).
  Stream<T> between;
  h_pass(in, between, width, height, weights);
  v_pass(between, out, width, height, weights);
}

} // namespace

void blur_pass_horizontal_float(Stream<float>& in, Stream<float>& out,
                                int width, int height,
                                std::span<const float> weights) {
  h_pass(in, out, width, height, weights);
}

void blur_pass_vertical_float(Stream<float>& in, Stream<float>& out,
                              int width, int height,
                              std::span<const float> weights) {
  v_pass(in, out, width, height, weights);
}

void gaussian_blur_top_float(Stream<float>& in, Stream<float>& out,
                             int width, int height,
                             std::span<const float> weights) {
  top(in, out, width, height, weights);
}

void blur_pass_horizontal_fixed(Stream<Pixel16>& in, Stream<Pixel16>& out,
                                int width, int height,
                                std::span<const Pixel16> weights) {
  h_pass(in, out, width, height, weights);
}

void blur_pass_vertical_fixed(Stream<Pixel16>& in, Stream<Pixel16>& out,
                              int width, int height,
                              std::span<const Pixel16> weights) {
  v_pass(in, out, width, height, weights);
}

void gaussian_blur_top_fixed(Stream<Pixel16>& in, Stream<Pixel16>& out,
                             int width, int height,
                             std::span<const Pixel16> weights) {
  top(in, out, width, height, weights);
}

img::ImageF run_blur_float(const img::ImageF& src,
                           const tonemap::GaussianKernel& kernel) {
  TMHLS_REQUIRE(src.channels() == 1, "run_blur_float expects 1 channel");
  const int w = src.width();
  const int h = src.height();
  Stream<float> in;
  Stream<float> out;
  for (float v : src.samples()) in.write(v);
  const auto& wts = kernel.weights();
  gaussian_blur_top_float(in, out, w, h,
                          std::span<const float>(wts.data(), wts.size()));
  img::ImageF result(w, h, 1);
  for (float& v : result.samples()) v = out.read();
  TMHLS_ASSERT(out.empty() && in.empty(), "stream accounting mismatch");
  return result;
}

img::ImageF run_blur_fixed(const img::ImageF& src,
                           const tonemap::GaussianKernel& kernel) {
  TMHLS_REQUIRE(src.channels() == 1, "run_blur_fixed expects 1 channel");
  const int w = src.width();
  const int h = src.height();
  Stream<Pixel16> in;
  Stream<Pixel16> out;
  // The AXI boundary quantises to the bus-aligned 16-bit format.
  for (float v : src.samples()) {
    in.write(Pixel16(static_cast<double>(v)));
  }
  std::vector<Pixel16> wts;
  wts.reserve(kernel.weights().size());
  for (float v : kernel.weights()) {
    wts.push_back(Pixel16(static_cast<double>(v)));
  }
  gaussian_blur_top_fixed(in, out, w, h,
                          std::span<const Pixel16>(wts.data(), wts.size()));
  img::ImageF result(w, h, 1);
  for (float& v : result.samples()) {
    v = static_cast<float>(out.read().to_double());
  }
  TMHLS_ASSERT(out.empty() && in.empty(), "stream accounting mismatch");
  return result;
}

} // namespace tmhls::hlscode
