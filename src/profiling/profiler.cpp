#include "profiling/profiler.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/table.hpp"

namespace tmhls::prof {

ProfileEntry* ProfileRegistry::find(const std::string& label) {
  for (ProfileEntry& e : entries_) {
    if (e.label == label) return &e;
  }
  return nullptr;
}

const ProfileEntry* ProfileRegistry::find(const std::string& label) const {
  for (const ProfileEntry& e : entries_) {
    if (e.label == label) return &e;
  }
  return nullptr;
}

void ProfileRegistry::record(const std::string& label, double seconds) {
  TMHLS_REQUIRE(seconds >= 0.0, "recorded time must be >= 0");
  if (ProfileEntry* e = find(label)) {
    e->calls += 1;
    e->total_seconds += seconds;
    return;
  }
  entries_.push_back(ProfileEntry{label, 1, seconds});
}

std::vector<ProfileEntry> ProfileRegistry::entries_by_time() const {
  std::vector<ProfileEntry> sorted = entries_;
  std::sort(sorted.begin(), sorted.end(),
            [](const ProfileEntry& a, const ProfileEntry& b) {
              return a.total_seconds > b.total_seconds;
            });
  return sorted;
}

double ProfileRegistry::total_seconds() const {
  double total = 0.0;
  for (const ProfileEntry& e : entries_) total += e.total_seconds;
  return total;
}

double ProfileRegistry::fraction(const std::string& label) const {
  const double total = total_seconds();
  if (total <= 0.0) return 0.0;
  const ProfileEntry* e = find(label);
  return e == nullptr ? 0.0 : e->total_seconds / total;
}

std::string ProfileRegistry::hotspot() const {
  const auto sorted = entries_by_time();
  return sorted.empty() ? std::string() : sorted.front().label;
}

std::string ProfileRegistry::render() const {
  TextTable t({"function", "calls", "total (s)", "share"});
  const double total = total_seconds();
  for (const ProfileEntry& e : entries_by_time()) {
    const double pct = total > 0.0 ? 100.0 * e.total_seconds / total : 0.0;
    t.add_row({e.label, std::to_string(e.calls),
               format_fixed(e.total_seconds, 4),
               format_fixed(pct, 1) + " %"});
  }
  return t.render();
}

void ProfileRegistry::clear() { entries_.clear(); }

ScopedTimer::ScopedTimer(ProfileRegistry& registry, std::string label)
    : registry_(registry), label_(std::move(label)),
      start_(std::chrono::steady_clock::now()) {}

double ScopedTimer::elapsed_seconds() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - start_).count();
}

ScopedTimer::~ScopedTimer() { registry_.record(label_, elapsed_seconds()); }

} // namespace tmhls::prof
