// Function-level profiler.
//
// The SDSoC flow starts by profiling the application "to determine the most
// computationally-intensive functions" (§III.A, Fig 2). This module provides
// the same capability for this library: scoped wall-clock timers that
// accumulate per-label totals into a registry, and a hotspot report sorted
// by inclusive time. Used by the examples and by bench_table1 to reproduce
// the §III.B conclusion that the Gaussian blur dominates.
//
// The registry is not thread-safe; profile single-threaded sections (the
// whole pipeline is single-threaded, matching the paper's ARM run).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace tmhls::prof {

/// Accumulated timing of one label.
struct ProfileEntry {
  std::string label;
  std::int64_t calls = 0;
  double total_seconds = 0.0;
};

/// A registry of label -> accumulated time.
class ProfileRegistry {
public:
  /// Add `seconds` to `label`'s total.
  void record(const std::string& label, double seconds);

  /// Entries sorted by descending total time.
  std::vector<ProfileEntry> entries_by_time() const;

  /// Fraction of the total recorded time spent in `label`, in [0, 1].
  double fraction(const std::string& label) const;

  /// The label with the largest total — "the most computationally-
  /// intensive function", i.e. what gets marked for acceleration.
  std::string hotspot() const;

  /// Sum of all recorded time.
  double total_seconds() const;

  /// Render as an aligned table with percentages.
  std::string render() const;

  /// Forget everything.
  void clear();

private:
  std::vector<ProfileEntry> entries_; // small N: linear scan beats a map
  ProfileEntry* find(const std::string& label);
  const ProfileEntry* find(const std::string& label) const;
};

/// RAII wall-clock timer recording into a registry on destruction.
class ScopedTimer {
public:
  ScopedTimer(ProfileRegistry& registry, std::string label);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Seconds elapsed so far.
  double elapsed_seconds() const;

private:
  ProfileRegistry& registry_;
  std::string label_;
  std::chrono::steady_clock::time_point start_;
};

} // namespace tmhls::prof
