// transport::Client — the caller-side end of the framed transport: submit
// FrameJobs to a transport::Server over one TCP socket, blocking
// (call()) or pipelined (submit()/next_result(), many requests in flight
// on the same connection). The pipelined form is the transport twin of
// serve::ToneMapService's submit/future API: submit() assigns a
// client-local request id and writes the frame; next_result() reads
// whichever reply arrives next — the server answers in completion order —
// and hands it back with the id it answers.
//
// Thread safety: none. A Client is one protocol conversation; drive it
// from one thread (or add external synchronisation). Use one Client per
// thread for concurrent load — connections are cheap relative to frames.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "serve/service.hpp"
#include "transport/socket.hpp"
#include "transport/wire.hpp"

namespace tmhls::transport {

/// A server-reported per-request failure (the wire error reply): the
/// remote message plus the id of the request it answers. The connection
/// remains usable after catching one.
class RemoteError : public Error {
public:
  RemoteError(std::uint64_t request_id, const std::string& message,
              wire::ErrorCode code = wire::ErrorCode::generic)
      : Error(message), request_id_(request_id), code_(code) {}

  /// The request this failure answers (matches a submit() return value).
  std::uint64_t request_id() const { return request_id_; }

  /// The typed category the server attached (wire v2) — overloaded and
  /// deadline_exceeded are the ones retry/degrade logic keys on.
  wire::ErrorCode code() const { return code_; }

private:
  std::uint64_t request_id_;
  wire::ErrorCode code_;
};

/// Configuration of a Client connection.
struct ClientOptions {
  /// Server address (the server binds loopback only).
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Total time to keep retrying the initial connect. Covers the race
  /// where the client races a server that is still binding (the CI
  /// loopback smoke test starts both within milliseconds).
  double connect_timeout_seconds = 5.0;
  /// Per-operation socket send/receive bound, applied to the connection
  /// at construction. 0 (default) sets no bound — except in call(),
  /// which then derives one from the job's deadline (deadline + 1s of
  /// wire slack) so a hung server can never block a deadlined round trip
  /// forever. A blown bound surfaces as the typed TimeoutError.
  double request_timeout_seconds = 0.0;
  /// How many times call() retries after a timeout or a broken
  /// connection (reconnecting first; server-reported errors are never
  /// retried — the server already answered). 0 (default) = fail fast.
  int max_request_retries = 0;
  /// Sleep before the first retry, doubling on each subsequent one.
  double retry_backoff_seconds = 0.05;
};

/// One reply from next_result(): the FrameResult exactly as the service
/// produced it, plus the client-side id of the request it answers.
struct ClientResult {
  std::uint64_t request_id = 0;
  serve::FrameResult result;
};

/// The blocking/pipelined transport client.
class Client {
public:
  /// Connect (with retry until connect_timeout_seconds); throws
  /// TransportError when the deadline passes without a connection.
  explicit Client(const ClientOptions& options);
  Client(const std::string& host, std::uint16_t port);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Pipelined submit: frame and options cross the wire now, the reply is
  /// read later by next_result(). Returns the request id the eventual
  /// reply will carry. Throws TransportError if the connection is gone,
  /// InvalidArgument for jobs the wire format rejects (empty frame,
  /// out-of-range blur_shards or dimensions).
  std::uint64_t submit(serve::FrameJob job);

  /// Read the next reply (completion order, not submission order). Throws
  /// RemoteError for a server-reported failure — the connection stays
  /// usable — and TransportError/WireError if the stream breaks.
  ClientResult next_result();

  /// Blocking round trip: submit one job, wait for its reply. Requires an
  /// empty pipeline (no outstanding submits).
  ///
  /// This is the resilient entry point: the socket operations are bounded
  /// (by request_timeout_seconds, or the job's deadline + 1s when only a
  /// deadline is set), and a timeout or broken connection is retried up
  /// to max_request_retries times with exponential backoff, reconnecting
  /// first. Server-reported failures (RemoteError — including typed
  /// overloaded / deadline_exceeded) are never retried here: the server
  /// answered, and whether to try again is the caller's policy. After
  /// the retry budget is spent, the last TimeoutError/TransportError
  /// propagates.
  serve::FrameResult call(serve::FrameJob job);

  /// Requests submitted whose replies have not been read yet.
  std::size_t in_flight() const { return in_flight_; }

  /// Half-close: tell the server no more requests are coming. Replies to
  /// outstanding requests can still be read.
  void finish_requests();

  void close();

private:
  /// Re-establish the connection (connect retry + configured timeouts)
  /// after close(); used by call()'s retry path.
  void reconnect();

  ClientOptions options_;
  Socket socket_;
  std::uint64_t next_request_id_ = 0;
  std::size_t in_flight_ = 0;
};

} // namespace tmhls::transport
