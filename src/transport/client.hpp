// transport::Client — the caller-side end of the framed transport: submit
// FrameJobs to a transport::Server over one TCP socket, blocking
// (call()) or pipelined (submit()/next_result(), many requests in flight
// on the same connection). The pipelined form is the transport twin of
// serve::ToneMapService's submit/future API: submit() assigns a
// client-local request id and writes the frame; next_result() reads
// whichever reply arrives next — the server answers in completion order —
// and hands it back with the id it answers.
//
// Thread safety: none. A Client is one protocol conversation; drive it
// from one thread (or add external synchronisation). Use one Client per
// thread for concurrent load — connections are cheap relative to frames.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "serve/service.hpp"
#include "stream/session.hpp"
#include "transport/socket.hpp"
#include "transport/wire.hpp"

namespace tmhls::transport {

/// A server-reported per-request failure (the wire error reply): the
/// remote message plus the id of the request it answers. The connection
/// remains usable after catching one.
class RemoteError : public Error {
public:
  RemoteError(std::uint64_t request_id, const std::string& message,
              wire::ErrorCode code = wire::ErrorCode::generic)
      : Error(message), request_id_(request_id), code_(code) {}

  /// The request this failure answers (matches a submit() return value).
  std::uint64_t request_id() const { return request_id_; }

  /// The typed category the server attached (wire v2) — overloaded and
  /// deadline_exceeded are the ones retry/degrade logic keys on.
  wire::ErrorCode code() const { return code_; }

private:
  std::uint64_t request_id_;
  wire::ErrorCode code_;
};

/// Configuration of a Client connection.
struct ClientOptions {
  /// Server address (the server binds loopback only).
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Total time to keep retrying the initial connect. Covers the race
  /// where the client races a server that is still binding (the CI
  /// loopback smoke test starts both within milliseconds).
  double connect_timeout_seconds = 5.0;
  /// Per-operation socket send/receive bound, applied to the connection
  /// at construction. 0 (default) sets no bound — except in call(),
  /// which then derives one from the job's deadline (deadline + 1s of
  /// wire slack) so a hung server can never block a deadlined round trip
  /// forever. A blown bound surfaces as the typed TimeoutError.
  double request_timeout_seconds = 0.0;
  /// How many times call() retries after a timeout or a broken
  /// connection (reconnecting first; server-reported errors are never
  /// retried — the server already answered). 0 (default) = fail fast.
  int max_request_retries = 0;
  /// Sleep before the first retry, doubling on each subsequent one.
  double retry_backoff_seconds = 0.05;
};

/// One reply from next_result(): the FrameResult exactly as the service
/// produced it, plus the client-side id of the request it answers.
struct ClientResult {
  std::uint64_t request_id = 0;
  serve::FrameResult result;
};

/// One delivered stream frame from next_stream_result(): the wire
/// StreamResult fields with the client-side stream id.
struct ClientStreamResult {
  std::uint64_t stream_id = 0;
  std::uint64_t sequence = 0;
  img::ImageF output;
  /// Rung the frame actually ran at server-side.
  serve::DegradeLevel rung = serve::DegradeLevel::none;
  std::string backend;
  double service_seconds = 0.0;
};

/// The blocking/pipelined transport client.
class Client {
public:
  /// Connect (with retry until connect_timeout_seconds); throws
  /// TransportError when the deadline passes without a connection.
  explicit Client(const ClientOptions& options);
  Client(const std::string& host, std::uint16_t port);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Pipelined submit: frame and options cross the wire now, the reply is
  /// read later by next_result(). Returns the request id the eventual
  /// reply will carry. Throws TransportError if the connection is gone,
  /// InvalidArgument for jobs the wire format rejects (empty frame,
  /// out-of-range blur_shards or dimensions).
  std::uint64_t submit(serve::FrameJob job);

  /// Read the next reply (completion order, not submission order). Throws
  /// RemoteError for a server-reported failure — the connection stays
  /// usable — and TransportError/WireError if the stream breaks.
  ClientResult next_result();

  /// Blocking round trip: submit one job, wait for its reply. Requires an
  /// empty pipeline (no outstanding submits).
  ///
  /// This is the resilient entry point: the socket operations are bounded
  /// (by request_timeout_seconds, or the job's deadline + 1s when only a
  /// deadline is set), and a timeout or broken connection is retried up
  /// to max_request_retries times with exponential backoff, reconnecting
  /// first. Server-reported failures (RemoteError — including typed
  /// overloaded / deadline_exceeded) are never retried here: the server
  /// answered, and whether to try again is the caller's policy. After
  /// the retry budget is spent, the last TimeoutError/TransportError
  /// propagates.
  serve::FrameResult call(serve::FrameJob job);

  /// Requests submitted whose replies have not been read yet.
  std::size_t in_flight() const { return in_flight_; }

  // --- Streaming sessions (wire v3) ---------------------------------------
  //
  // A Client is either in request mode or stream mode per conversation:
  // open_stream() requires no pipelined requests outstanding, submit()
  // requires no streams open. Stream ids are client-assigned; results
  // arrive strictly in sequence order per stream. The credit window is
  // enforced here — send_stream_frame() blocks (reading replies into the
  // result buffer) while the stream has zero credits, so the client can
  // never overrun the server's flow-control window.

  /// Open a stream session with the server. Blocks for the server's
  /// verdict: returns the stream id on StreamOpened, throws RemoteError
  /// (typed overloaded for a capacity shed) on rejection.
  std::uint64_t open_stream(stream::StreamConfig config);

  /// Send frame `sequence` of an open stream, consuming one credit
  /// (blocking for credits first if none are left). Throws RemoteError if
  /// the server terminated the stream (shed -> ErrorCode::overloaded,
  /// failed -> generic), or for a per-frame server rejection discovered
  /// while waiting — the stream itself survives those.
  void send_stream_frame(std::uint64_t stream_id, std::uint64_t sequence,
                         const img::ImageF& frame);

  /// Delivered frames already read off the socket while pumping.
  std::size_t buffered_stream_results() const {
    return stream_results_.size();
  }

  /// Next delivered frame, in per-stream sequence order: pops the buffer,
  /// or blocks reading the socket until one arrives.
  ClientStreamResult next_stream_result();

  /// End a stream: sends StreamClose (unless the server already
  /// terminated the stream spontaneously), drains the tail into the
  /// result buffer, and returns the final per-stream counters.
  wire::StreamClosed close_stream(std::uint64_t stream_id);

  /// Flow-control credits currently held for an open stream.
  std::uint32_t stream_credits(std::uint64_t stream_id) const;

  /// Half-close: tell the server no more requests are coming. Replies to
  /// outstanding requests can still be read.
  void finish_requests();

  void close();

private:
  /// Client-side state of one stream session.
  struct StreamSession {
    bool opened = false; ///< StreamOpened received
    bool closed = false; ///< StreamClosed received (info below valid)
    std::uint32_t credits = 0;
    wire::StreamClosed closed_info;
  };

  /// Re-establish the connection (connect retry + configured timeouts)
  /// after close(); used by call()'s retry path.
  void reconnect();
  /// Read and dispatch ONE server-to-client stream message (result,
  /// credit, closed, or stream-scoped error — the last throws
  /// RemoteError after restoring the frame's credit).
  void pump_stream_message();
  void send_message(const std::vector<std::uint8_t>& message,
                    const char* what);

  ClientOptions options_;
  Socket socket_;
  std::uint64_t next_request_id_ = 0;
  std::size_t in_flight_ = 0;
  std::uint64_t next_stream_id_ = 1;
  std::map<std::uint64_t, StreamSession> streams_;
  std::deque<ClientStreamResult> stream_results_;
};

} // namespace tmhls::transport
