// Message-level I/O shared by transport::Server and transport::Client:
// read one complete framed message (header + checksum-verified payload)
// off a stream socket. Writing needs no helper — wire::encode_* returns a
// complete message and Socket::send_all writes it.
#pragma once

#include <cstdint>
#include <vector>

#include "transport/socket.hpp"
#include "transport/wire.hpp"

namespace tmhls::transport {

/// One complete inbound message: the validated header and its
/// checksum-verified payload (not yet decoded into a typed message).
struct InboundMessage {
  wire::Header header;
  std::vector<std::uint8_t> payload;
};

/// Outcome of read_message.
enum class ReadMessageStatus {
  ok,      ///< `message` holds a validated header + verified payload
  eof,     ///< clean end of stream at a message boundary
  error,   ///< connection broke mid-message
  timeout, ///< the socket's receive timeout elapsed; the stream position
           ///< is unknown, so the connection is only good for closing
};

/// Read exactly one message. Throws WireError when the bytes violate the
/// protocol (bad magic/version/type, oversized payload, checksum
/// mismatch) — the stream is unsynchronised and the caller must close it.
ReadMessageStatus read_message(Socket& socket, InboundMessage& message);

} // namespace tmhls::transport
