// Thin RAII wrappers over POSIX TCP sockets — just enough for the framed
// transport: a connected stream socket with exact-length send/receive, and
// a listening socket bound to the loopback interface. No third-party
// dependencies, no event loop; the server gets its concurrency from
// threads, its backpressure from bounded windows plus TCP flow control.
//
// The listener binds 127.0.0.1 only: this transport fronts an in-process
// service for co-located clients (and the CI loopback gate); exposing it
// beyond the host is a deployment decision that belongs in front of it,
// not a default.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "common/error.hpp"

namespace tmhls::transport {

/// Socket-level failure (bind, connect, listen, option setting). Read and
/// write failures on an established connection are reported through
/// return values instead — a peer hanging up is an event, not an error.
class TransportError : public Error {
public:
  explicit TransportError(const std::string& what) : Error(what) {}
};

/// A socket operation exceeded its configured send/receive timeout (see
/// Socket::set_recv_timeout). Typed so callers can tell "the server is
/// slow or hung" (retryable against a deadline) from "the connection
/// broke" (reconnect first).
class TimeoutError : public TransportError {
public:
  explicit TimeoutError(const std::string& what) : TransportError(what) {}
};

/// Outcome of an exact-length read.
enum class ReadStatus {
  ok,      ///< the buffer was filled completely
  eof,     ///< clean end of stream before the first byte (peer finished)
  error,   ///< connection broke (reset, or EOF mid-message)
  timeout, ///< the configured receive timeout elapsed (possibly
           ///< mid-message — the stream position is unknown, so the
           ///< connection is only good for closing)
};

/// Outcome of an exact-length write.
enum class SendStatus {
  ok,      ///< the whole span was handed to the kernel
  error,   ///< connection broke (reset; a vanished peer is a status, not
           ///< a signal — SIGPIPE is suppressed)
  timeout, ///< the configured send timeout elapsed (peer not draining)
};

/// A connected TCP stream socket. Move-only; the destructor closes.
class Socket {
public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Connect to host:port; throws TransportError on failure.
  static Socket connect(const std::string& host, std::uint16_t port);

  /// Write the whole span; the status says how it ended.
  SendStatus send_all(std::span<const std::uint8_t> bytes);

  /// Read exactly bytes.size() bytes.
  ReadStatus recv_all(std::span<std::uint8_t> bytes);

  /// Bound every subsequent send / receive: an operation that cannot
  /// complete within `seconds` returns SendStatus::timeout /
  /// ReadStatus::timeout instead of blocking forever. 0 (the default
  /// state) disables the bound. Throws TransportError if the option
  /// cannot be set; `seconds` must be >= 0 and finite.
  void set_send_timeout(double seconds);
  void set_recv_timeout(double seconds);

  /// Half-close the read side: an in-progress or future recv on this
  /// socket observes EOF. Used to stop accepting requests on a
  /// connection while its responses drain.
  void shutdown_read();

  /// Half-close the write side: the peer observes EOF after the bytes
  /// already sent. Used by clients to signal "no more requests" while
  /// still reading replies.
  void shutdown_write();

  /// Full shutdown: unblocks any thread blocked in recv/send.
  void shutdown_both();

  void close();

private:
  int fd_ = -1;
};

/// A TCP listener on 127.0.0.1. Move-only; the destructor closes.
class ListenSocket {
public:
  /// Bind and listen on the loopback interface; port 0 picks an ephemeral
  /// port (see port()). Throws TransportError on failure.
  explicit ListenSocket(std::uint16_t port);
  ~ListenSocket();

  ListenSocket(ListenSocket&& other) noexcept;
  ListenSocket& operator=(ListenSocket&& other) noexcept;
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  /// The bound port (resolves an ephemeral request to the real one).
  std::uint16_t port() const { return port_; }

  /// Block for the next connection. Returns an invalid Socket once the
  /// listener has been shut down (the accept loop's exit signal).
  Socket accept();

  /// Wake a thread blocked in accept() (it returns an invalid Socket).
  /// Safe to call while another thread is inside accept(); the fd itself
  /// stays open until close(), which must only run once no thread can be
  /// in accept() any more (i.e. after joining the accept thread).
  void shutdown();

  /// Close the listener fd. Not safe concurrently with accept() — call
  /// shutdown() first and join the accepting thread.
  void close();

private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

} // namespace tmhls::transport
