// transport::Server — the socket front of serve::ToneMapService. Accepts
// loopback TCP connections, reads framed FrameJob requests off each one,
// feeds them to the service's submit(), and writes each response back as
// its future resolves. This is the layer that turns the in-process serving
// API into a deployable network service, the way the paper's accelerator
// serves frames across the AXI/DMA boundary (PAPER.md §IV): a
// fixed-function core behind a thin framed transport, with the guarantee
// that serialization never changes bits.
//
// Threading: one accept thread, plus a reader and a writer thread per
// connection. The reader decodes requests and submits them (blocking on
// the per-connection in-flight window, then on the service's admission
// queue — backpressure propagates all the way to the client's socket via
// TCP flow control). The writer watches the connection's outstanding
// futures and writes each reply the moment it is ready — completion
// order, not submission order; clients correlate via the echoed
// request_id.
//
// Error containment: an execution failure (unknown backend, incapable
// kernel) travels back as a wire error reply and the connection continues.
// A *protocol* violation (bad magic, checksum mismatch, truncated or
// oversized message) means the stream cannot be trusted: the connection is
// closed — and only the connection; the service and every other
// connection keep running.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "serve/service.hpp"
#include "stream/session.hpp"
#include "transport/socket.hpp"

namespace tmhls::transport {

/// Configuration of a Server.
struct ServerOptions {
  /// TCP port to listen on (loopback interface only); 0 picks an
  /// ephemeral port, readable from Server::port().
  std::uint16_t port = 0;
  /// Options of the owned ToneMapService the transport fronts.
  serve::ToneMapServiceOptions service;
  /// Options of the owned stream::SessionManager behind the v3 streaming
  /// messages (max_streams is the server-wide stream capacity, shared by
  /// every connection).
  stream::SessionManagerOptions sessions;
  /// Bound on decoded-but-unanswered requests per connection. The reader
  /// stops pulling new requests off the socket while the window is full,
  /// so a client that pipelines beyond it is throttled by TCP flow
  /// control rather than ballooning server memory. Must be >= 1.
  int max_in_flight_per_connection = 8;
  /// Bound on simultaneously served connections; a connection arriving
  /// beyond it is closed immediately. Must be >= 1.
  int max_connections = 64;
};

/// Validation: throws InvalidArgument naming the offending field unless
/// max_in_flight_per_connection >= 1 and max_connections >= 1 (the service
/// options are validated by the service itself).
void validate(const ServerOptions& options);

/// Lifetime counters of a Server (monotonic except connections_active).
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;
  /// Requests decoded successfully and handed to the service.
  std::uint64_t requests_received = 0;
  /// Responses written back. Advanced before the bytes hit the socket —
  /// the service-counter convention — so a client that has observed a
  /// reply also observes it counted; a write the peer broke mid-message
  /// stays counted (the connection is closed right after).
  std::uint64_t responses_sent = 0;
  /// Per-request execution failures written back as wire error replies.
  /// Same advance-before-write convention as responses_sent.
  std::uint64_t errors_sent = 0;
  /// Requests admission control shed (serve::Overloaded), answered with
  /// ErrorCode::overloaded. Counted even when the peer is already gone
  /// and the reply cannot be written.
  std::uint64_t requests_shed = 0;
  /// Requests whose deadline passed server-side (serve::DeadlineExceeded),
  /// answered with ErrorCode::deadline_exceeded. Counted even when the
  /// reply cannot be written.
  std::uint64_t requests_expired = 0;
  /// Connections dropped for wire-protocol violations (bad magic,
  /// checksum mismatch, truncation, oversized fields).
  std::uint64_t protocol_errors = 0;
  /// Stream sessions opened over the wire (StreamOpen accepted).
  std::uint64_t streams_opened = 0;
  /// Stream sessions retired over the wire: client close, server-side
  /// shed/abort, and reader-exit reclamation alike. Once every connection
  /// is gone, streams_closed == streams_opened.
  std::uint64_t streams_closed = 0;
  /// StreamFrame messages decoded (whether delivered, shed or expired).
  std::uint64_t stream_frames_received = 0;
  /// StreamResult messages written back. Same advance-before-write
  /// convention as responses_sent.
  std::uint64_t stream_results_sent = 0;
};

/// Flatten into the common reporting form (scope "server").
common::StatsSnapshot snapshot(const ServerStats& stats);

/// The socket transport front. Construction binds, listens and starts
/// serving; stop() (or the destructor) drains cleanly: in-flight requests
/// complete and their responses are written before connections close.
class Server {
public:
  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The port actually bound (resolves port 0 to the ephemeral choice).
  std::uint16_t port() const { return port_; }

  const ServerOptions& options() const { return options_; }

  /// The fronted service (e.g. for ServiceStats alongside ServerStats).
  serve::ToneMapService& service() { return service_; }
  const serve::ToneMapService& service() const { return service_; }

  /// The owned stream session manager (e.g. for SessionManagerStats and
  /// reclaim_stalled sweeps alongside the transport counters).
  stream::SessionManager& sessions() { return sessions_; }
  const stream::SessionManager& sessions() const { return sessions_; }

  /// Snapshot of the transport-level counters.
  ServerStats stats() const;

  /// Stop accepting, stop reading new requests, finish every request
  /// already accepted (responses are written as their futures resolve),
  /// then close all connections and join all threads. Idempotent.
  void stop();

private:
  struct Connection;

  void accept_loop();
  void reader_loop(Connection& connection);
  void writer_loop(Connection& connection);
  void reap_finished_locked();

  /// Stream-message dispatch, run inline on the connection's reader
  /// thread (a stream's frames are serialised per stream anyway, and the
  /// synchronous processing is itself the backpressure — the credit
  /// window bounds what a client can queue behind it). Replies go through
  /// the writer's outbox so the socket keeps a single writing thread.
  /// WireError propagates to the caller (protocol violation).
  void handle_stream_open(Connection& connection,
                          std::span<const std::uint8_t> payload);
  void handle_stream_frame(Connection& connection,
                           std::span<const std::uint8_t> payload);
  void handle_stream_close(Connection& connection,
                           std::span<const std::uint8_t> payload);
  /// Reader-exit reclamation: abort every stream the connection still
  /// owns (mid-stream disconnects must not pin stream slots).
  void abort_connection_streams(Connection& connection);
  static void enqueue(Connection& connection,
                      std::vector<std::uint8_t> message);

  ServerOptions options_;
  serve::ToneMapService service_;
  stream::SessionManager sessions_;
  ListenSocket listener_;
  std::uint16_t port_ = 0;

  mutable std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> requests_received_{0};
  std::atomic<std::uint64_t> responses_sent_{0};
  std::atomic<std::uint64_t> errors_sent_{0};
  std::atomic<std::uint64_t> requests_shed_{0};
  std::atomic<std::uint64_t> requests_expired_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> streams_opened_{0};
  std::atomic<std::uint64_t> streams_closed_{0};
  std::atomic<std::uint64_t> stream_frames_received_{0};
  std::atomic<std::uint64_t> stream_results_sent_{0};
};

} // namespace tmhls::transport
