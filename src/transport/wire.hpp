// transport::wire — the length-prefixed binary frame protocol that carries
// FrameJobs to a remote ToneMapService and FrameResults back. This is the
// host-side twin of the paper's AXI/DMA boundary (§IV): the tone-mapper is
// a fixed-function core behind a thin framed transport, and the bits that
// cross the boundary are defined here, independently of either endpoint.
//
// Every message is one header (16 bytes) followed by one payload:
//
//   offset  size  field
//   0       4     magic "TMHW" (raw bytes, not an integer)
//   4       2     protocol version (u16 LE; this header describes v2,
//                 which added QoS class + deadline to requests, the
//                 degrade level to responses, and a typed code to errors)
//   6       2     message type (u16 LE: 1 request, 2 response, 3 error)
//   8       4     payload size in bytes (u32 LE, bounded by kMaxPayloadBytes)
//   12      4     FNV-1a 32-bit checksum of the payload bytes (u32 LE)
//
// All multi-byte integers are little-endian **on the wire regardless of
// host endianness** — encoders assemble bytes explicitly, decoders
// reassemble them explicitly, so two hosts of different endianness agree
// on every bit. Floats travel as the LE byte order of their IEEE-754 bit
// pattern, which is what makes the transport bit-transparent: the frame
// samples a client sends are the exact samples the service blurs, NaN
// payloads included.
//
// Decoders are defensive: any structural violation (bad magic, unknown
// version or enum code, truncated payload, oversized dimensions, checksum
// mismatch) throws WireError and never allocates more than the declared —
// and bounded — payload size. A server treats WireError as "this stream
// cannot be trusted" and closes the connection; execution errors, by
// contrast, travel *inside* the protocol as error messages.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "serve/service.hpp"
#include "stream/session.hpp"

namespace tmhls::transport {

/// Malformed or unsafe wire data (bad magic, truncation, checksum
/// mismatch, out-of-range field). Distinct from execution errors, which
/// travel inside the protocol as MessageType::error replies.
class WireError : public Error {
public:
  explicit WireError(const std::string& what) : Error(what) {}
};

namespace wire {

/// Protocol version this implementation speaks. A decoder rejects every
/// other version — there is exactly one wire format per build, so the
/// version field is a compatibility tripwire, not a negotiation.
/// History: v1 shipped the original request/response/error payloads; v2
/// added FrameJob::qos (u8) + FrameJob::deadline_seconds (f64) to
/// requests, FrameResult::degrade (u8) to responses, and ErrorCode (u8)
/// to error replies. v3 made the request deadline explicit (flag u8 +
/// f64, replacing the 0.0-means-none overload) and added the streaming
/// session messages (StreamOpen/StreamFrame/StreamClose client->server;
/// StreamOpened/StreamResult/StreamCredit/StreamClosed server->client)
/// with credit-based per-stream flow control. v4 retired the deprecated
/// BlurKind alias: PipelineOptions no longer carries the blur byte (the
/// backend string + datapath byte are the complete execution selection);
/// Datapath code 0 was renamed from_blur_kind -> unspecified with the
/// same "follow the backend" meaning.
inline constexpr std::uint16_t kVersion = 4;

/// First four payload-independent bytes of every message.
inline constexpr std::array<std::uint8_t, 4> kMagic{'T', 'M', 'H', 'W'};

/// Fixed size of the message header in bytes.
inline constexpr std::size_t kHeaderBytes = 16;

/// Per-axis bound on frame dimensions crossing the wire. Frames larger
/// than this belong to the in-process API (or to blur_shards on a
/// co-located service), not to a serialized hop.
inline constexpr int kMaxDimension = 4096;

/// Upper bound a decoder accepts for one payload: the worst-case frame
/// within kMaxDimension (4096 x 4096 x 4 channels x 4 bytes = 256 MiB of
/// samples) plus 8 KiB of headroom for ids, options and the
/// length-prefixed strings (kMaxStringBytes) — so every frame the
/// dimension bound admits is encodable, and nothing an attacker declares
/// can exceed it. Far below "asks us to allocate the machine": a decoder
/// additionally verifies the bytes are actually present before
/// allocating.
inline constexpr std::uint32_t kMaxPayloadBytes =
    256u * 1024u * 1024u + 8u * 1024u;

/// Bound on string fields (backend names, error messages).
inline constexpr std::uint32_t kMaxStringBytes = 4096;

enum class MessageType : std::uint16_t {
  request = 1,  ///< client -> server: one FrameJob
  response = 2, ///< server -> client: one FrameResult
  error = 3,    ///< server -> client: execution failure of one request
  // Streaming session messages (v3). The error type doubles as the
  // failure reply for stream_open/stream_frame, carrying the stream id
  // in its request_id field.
  stream_open = 4,   ///< client -> server: open one stream session
  stream_frame = 5,  ///< client -> server: one frame of an open stream
  stream_close = 6,  ///< client -> server: end-of-stream, drain + close
  stream_opened = 7, ///< server -> client: open accepted + initial credits
  stream_result = 8, ///< server -> client: one delivered frame (1 credit)
  stream_credit = 9, ///< server -> client: credits freed without delivery
  stream_closed = 10, ///< server -> client: final per-stream counters
};

/// Decoded message header (magic already verified and stripped).
struct Header {
  std::uint16_t version = kVersion;
  MessageType type = MessageType::request;
  std::uint32_t payload_bytes = 0;
  std::uint32_t checksum = 0;
};

/// FNV-1a 32-bit over the payload bytes — cheap, dependency-free, and
/// plenty to catch truncation/corruption on a stream transport (TCP
/// already guards the bits; the checksum guards framing bugs).
std::uint32_t checksum(std::span<const std::uint8_t> payload);

/// Serialize a header (including magic) into exactly kHeaderBytes.
std::array<std::uint8_t, kHeaderBytes> encode_header(const Header& header);

/// Parse and validate a header: magic, version, known type, payload size
/// within kMaxPayloadBytes. Throws WireError on any violation.
Header decode_header(std::span<const std::uint8_t> bytes);

/// Throws WireError unless `payload` matches `header.checksum`.
void verify_checksum(const Header& header,
                     std::span<const std::uint8_t> payload);

/// One request on the wire: a client-assigned correlation id plus the job.
/// The id is echoed in the matching response/error, which is what lets a
/// pipelined client keep many requests in flight on one socket.
struct Request {
  std::uint64_t request_id = 0;
  serve::FrameJob job;
};

/// One successful reply: the request id it answers plus the FrameResult
/// exactly as the service produced it (ids, timings, backend name, and the
/// bit-exact output frame).
struct Response {
  std::uint64_t request_id = 0;
  serve::FrameResult result;
};

/// Typed category of an in-protocol error reply (u8 on the wire, v2).
/// Lets a remote client re-raise the server-side error as the same typed
/// exception a co-located caller would have seen — Overloaded and
/// DeadlineExceeded in particular, which retry/degrade logic keys on.
enum class ErrorCode : std::uint8_t {
  generic = 0,           ///< any other execution failure
  invalid_argument = 1,  ///< the service rejected the job as malformed
  overloaded = 2,        ///< admission control shed the job (serve::Overloaded)
  deadline_exceeded = 3, ///< the job's deadline passed (serve::DeadlineExceeded)
};

/// One failed reply: the request id plus the typed code and server-side
/// error message. The connection stays usable — execution errors are
/// per-request.
struct ErrorReply {
  std::uint64_t request_id = 0;
  ErrorCode code = ErrorCode::generic;
  std::string message;
};

/// Open one stream session (v3). Stream ids are client-assigned (like
/// request ids) and scope every later stream message; the config is the
/// client-controllable subset of stream::StreamConfig — rate-controller
/// internals (hysteresis band, rung costs) are server policy and do not
/// cross the wire.
struct StreamOpen {
  std::uint64_t stream_id = 0;
  stream::StreamConfig config;
};

/// Open accepted: the initial credit grant (== config.credits). A
/// rejected open comes back as an error message instead, carrying the
/// stream id in its request_id field.
struct StreamOpened {
  std::uint64_t stream_id = 0;
  std::uint32_t credits = 0;
};

/// One frame of an open stream. Consumes one credit; the client must not
/// send with zero credits outstanding.
struct StreamFrame {
  std::uint64_t stream_id = 0;
  std::uint64_t sequence = 0;
  img::ImageF frame;
};

/// One delivered frame, in sequence order. Implicitly returns the
/// frame's credit to the client.
struct StreamResult {
  std::uint64_t stream_id = 0;
  std::uint64_t sequence = 0;
  serve::DegradeLevel rung = serve::DegradeLevel::none;
  std::string backend;
  double service_seconds = 0.0;
  img::ImageF output;
};

/// Credits freed WITHOUT a delivery (frames shed or expired server-side).
struct StreamCredit {
  std::uint64_t stream_id = 0;
  std::uint32_t credits = 0;
};

/// End-of-stream from the client: drain and report final counters.
struct StreamClose {
  std::uint64_t stream_id = 0;
};

/// Terminal status of a stream (u8 on the wire).
enum class StreamStatus : std::uint8_t {
  closed = 0, ///< clean close (client-initiated)
  shed = 1,   ///< shed as a unit by the rate controller (best_effort)
  failed = 2, ///< server-side execution failure aborted the stream
};

/// Final per-stream counters; the last message of a stream in either
/// direction. Sent in reply to StreamClose, or spontaneously when the
/// server sheds/aborts the stream.
struct StreamClosed {
  std::uint64_t stream_id = 0;
  StreamStatus status = StreamStatus::closed;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_shed = 0;
  std::uint64_t frames_expired = 0;
  std::uint32_t rung_switches = 0;
  /// Failure detail when status == failed; empty otherwise.
  std::string message;
};

/// Encode a complete message, header included, ready to write to a socket.
std::vector<std::uint8_t> encode_request(const Request& request);
std::vector<std::uint8_t> encode_response(const Response& response);
std::vector<std::uint8_t> encode_error(const ErrorReply& reply);
std::vector<std::uint8_t> encode_stream_open(const StreamOpen& open);
std::vector<std::uint8_t> encode_stream_opened(const StreamOpened& opened);
std::vector<std::uint8_t> encode_stream_frame(const StreamFrame& frame);
std::vector<std::uint8_t> encode_stream_result(const StreamResult& result);
std::vector<std::uint8_t> encode_stream_credit(const StreamCredit& credit);
std::vector<std::uint8_t> encode_stream_close(const StreamClose& close);
std::vector<std::uint8_t> encode_stream_closed(const StreamClosed& closed);

/// Decode one payload (the caller has already decoded the header, read
/// exactly header.payload_bytes and verified the checksum). Throws
/// WireError on truncated/trailing bytes, out-of-range dimensions or
/// unknown enum codes.
Request decode_request(std::span<const std::uint8_t> payload);
Response decode_response(std::span<const std::uint8_t> payload);
ErrorReply decode_error(std::span<const std::uint8_t> payload);
StreamOpen decode_stream_open(std::span<const std::uint8_t> payload);
StreamOpened decode_stream_opened(std::span<const std::uint8_t> payload);
StreamFrame decode_stream_frame(std::span<const std::uint8_t> payload);
StreamResult decode_stream_result(std::span<const std::uint8_t> payload);
StreamCredit decode_stream_credit(std::span<const std::uint8_t> payload);
StreamClose decode_stream_close(std::span<const std::uint8_t> payload);
StreamClosed decode_stream_closed(std::span<const std::uint8_t> payload);

} // namespace wire
} // namespace tmhls::transport
