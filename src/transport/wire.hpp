// transport::wire — the length-prefixed binary frame protocol that carries
// FrameJobs to a remote ToneMapService and FrameResults back. This is the
// host-side twin of the paper's AXI/DMA boundary (§IV): the tone-mapper is
// a fixed-function core behind a thin framed transport, and the bits that
// cross the boundary are defined here, independently of either endpoint.
//
// Every message is one header (16 bytes) followed by one payload:
//
//   offset  size  field
//   0       4     magic "TMHW" (raw bytes, not an integer)
//   4       2     protocol version (u16 LE; this header describes v2,
//                 which added QoS class + deadline to requests, the
//                 degrade level to responses, and a typed code to errors)
//   6       2     message type (u16 LE: 1 request, 2 response, 3 error)
//   8       4     payload size in bytes (u32 LE, bounded by kMaxPayloadBytes)
//   12      4     FNV-1a 32-bit checksum of the payload bytes (u32 LE)
//
// All multi-byte integers are little-endian **on the wire regardless of
// host endianness** — encoders assemble bytes explicitly, decoders
// reassemble them explicitly, so two hosts of different endianness agree
// on every bit. Floats travel as the LE byte order of their IEEE-754 bit
// pattern, which is what makes the transport bit-transparent: the frame
// samples a client sends are the exact samples the service blurs, NaN
// payloads included.
//
// Decoders are defensive: any structural violation (bad magic, unknown
// version or enum code, truncated payload, oversized dimensions, checksum
// mismatch) throws WireError and never allocates more than the declared —
// and bounded — payload size. A server treats WireError as "this stream
// cannot be trusted" and closes the connection; execution errors, by
// contrast, travel *inside* the protocol as error messages.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "serve/service.hpp"

namespace tmhls::transport {

/// Malformed or unsafe wire data (bad magic, truncation, checksum
/// mismatch, out-of-range field). Distinct from execution errors, which
/// travel inside the protocol as MessageType::error replies.
class WireError : public Error {
public:
  explicit WireError(const std::string& what) : Error(what) {}
};

namespace wire {

/// Protocol version this implementation speaks. A decoder rejects every
/// other version — there is exactly one wire format per build, so the
/// version field is a compatibility tripwire, not a negotiation.
/// History: v1 shipped the original request/response/error payloads; v2
/// added FrameJob::qos (u8) + FrameJob::deadline_seconds (f64) to
/// requests, FrameResult::degrade (u8) to responses, and ErrorCode (u8)
/// to error replies.
inline constexpr std::uint16_t kVersion = 2;

/// First four payload-independent bytes of every message.
inline constexpr std::array<std::uint8_t, 4> kMagic{'T', 'M', 'H', 'W'};

/// Fixed size of the message header in bytes.
inline constexpr std::size_t kHeaderBytes = 16;

/// Per-axis bound on frame dimensions crossing the wire. Frames larger
/// than this belong to the in-process API (or to blur_shards on a
/// co-located service), not to a serialized hop.
inline constexpr int kMaxDimension = 4096;

/// Upper bound a decoder accepts for one payload: the worst-case frame
/// within kMaxDimension (4096 x 4096 x 4 channels x 4 bytes = 256 MiB of
/// samples) plus 8 KiB of headroom for ids, options and the
/// length-prefixed strings (kMaxStringBytes) — so every frame the
/// dimension bound admits is encodable, and nothing an attacker declares
/// can exceed it. Far below "asks us to allocate the machine": a decoder
/// additionally verifies the bytes are actually present before
/// allocating.
inline constexpr std::uint32_t kMaxPayloadBytes =
    256u * 1024u * 1024u + 8u * 1024u;

/// Bound on string fields (backend names, error messages).
inline constexpr std::uint32_t kMaxStringBytes = 4096;

enum class MessageType : std::uint16_t {
  request = 1,  ///< client -> server: one FrameJob
  response = 2, ///< server -> client: one FrameResult
  error = 3,    ///< server -> client: execution failure of one request
};

/// Decoded message header (magic already verified and stripped).
struct Header {
  std::uint16_t version = kVersion;
  MessageType type = MessageType::request;
  std::uint32_t payload_bytes = 0;
  std::uint32_t checksum = 0;
};

/// FNV-1a 32-bit over the payload bytes — cheap, dependency-free, and
/// plenty to catch truncation/corruption on a stream transport (TCP
/// already guards the bits; the checksum guards framing bugs).
std::uint32_t checksum(std::span<const std::uint8_t> payload);

/// Serialize a header (including magic) into exactly kHeaderBytes.
std::array<std::uint8_t, kHeaderBytes> encode_header(const Header& header);

/// Parse and validate a header: magic, version, known type, payload size
/// within kMaxPayloadBytes. Throws WireError on any violation.
Header decode_header(std::span<const std::uint8_t> bytes);

/// Throws WireError unless `payload` matches `header.checksum`.
void verify_checksum(const Header& header,
                     std::span<const std::uint8_t> payload);

/// One request on the wire: a client-assigned correlation id plus the job.
/// The id is echoed in the matching response/error, which is what lets a
/// pipelined client keep many requests in flight on one socket.
struct Request {
  std::uint64_t request_id = 0;
  serve::FrameJob job;
};

/// One successful reply: the request id it answers plus the FrameResult
/// exactly as the service produced it (ids, timings, backend name, and the
/// bit-exact output frame).
struct Response {
  std::uint64_t request_id = 0;
  serve::FrameResult result;
};

/// Typed category of an in-protocol error reply (u8 on the wire, v2).
/// Lets a remote client re-raise the server-side error as the same typed
/// exception a co-located caller would have seen — Overloaded and
/// DeadlineExceeded in particular, which retry/degrade logic keys on.
enum class ErrorCode : std::uint8_t {
  generic = 0,           ///< any other execution failure
  invalid_argument = 1,  ///< the service rejected the job as malformed
  overloaded = 2,        ///< admission control shed the job (serve::Overloaded)
  deadline_exceeded = 3, ///< the job's deadline passed (serve::DeadlineExceeded)
};

/// One failed reply: the request id plus the typed code and server-side
/// error message. The connection stays usable — execution errors are
/// per-request.
struct ErrorReply {
  std::uint64_t request_id = 0;
  ErrorCode code = ErrorCode::generic;
  std::string message;
};

/// Encode a complete message, header included, ready to write to a socket.
std::vector<std::uint8_t> encode_request(const Request& request);
std::vector<std::uint8_t> encode_response(const Response& response);
std::vector<std::uint8_t> encode_error(const ErrorReply& reply);

/// Decode one payload (the caller has already decoded the header, read
/// exactly header.payload_bytes and verified the checksum). Throws
/// WireError on truncated/trailing bytes, out-of-range dimensions or
/// unknown enum codes.
Request decode_request(std::span<const std::uint8_t> payload);
Response decode_response(std::span<const std::uint8_t> payload);
ErrorReply decode_error(std::span<const std::uint8_t> payload);

} // namespace wire
} // namespace tmhls::transport
