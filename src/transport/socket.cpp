#include "transport/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>
#include <utility>

#include "common/fault_injection.hpp"

namespace tmhls::transport {

namespace {

std::string errno_string(const char* what) {
  // Built step-wise: the one-expression concatenation trips a GCC 12
  // -Wrestrict false positive (PR105651).
  std::string out = what;
  out += ": ";
  out += std::strerror(errno);
  return out;
}

sockaddr_in loopback_address(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw TransportError("invalid IPv4 address: " + host);
  }
  return addr;
}

} // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Socket Socket::connect(const std::string& host, std::uint16_t port) {
  const sockaddr_in addr = loopback_address(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw TransportError(errno_string("socket"));
  Socket socket(fd);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    throw TransportError(errno_string("connect"));
  }
  // The protocol writes whole messages; disable Nagle so a small request
  // is not held back waiting for the previous response's ACK.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return socket;
}

SendStatus Socket::send_all(std::span<const std::uint8_t> bytes) {
  // Fault site "transport.socket.send": a firing `fail` drops the write
  // as if the connection reset under it.
  if (fault::should_fail("transport.socket.send")) return SendStatus::error;
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return SendStatus::timeout;
      }
      return SendStatus::error;
    }
    sent += static_cast<std::size_t>(n);
  }
  return SendStatus::ok;
}

ReadStatus Socket::recv_all(std::span<std::uint8_t> bytes) {
  // Fault site "transport.socket.recv": a firing `fail` drops the read —
  // aimed with trigger_after, one arming produces both the
  // dropped-connection (first read) and short-read (a later, mid-message
  // read) scenarios.
  if (fault::should_fail("transport.socket.recv")) return ReadStatus::error;
  std::size_t received = 0;
  while (received < bytes.size()) {
    const ssize_t n =
        ::recv(fd_, bytes.data() + received, bytes.size() - received, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return ReadStatus::timeout;
      }
      return ReadStatus::error;
    }
    if (n == 0) {
      // EOF at a message boundary is the peer finishing; mid-message it
      // is a truncated stream.
      return received == 0 ? ReadStatus::eof : ReadStatus::error;
    }
    received += static_cast<std::size_t>(n);
  }
  return ReadStatus::ok;
}

namespace {

timeval timeout_to_timeval(double seconds, const char* what) {
  if (!(seconds >= 0.0) || !std::isfinite(seconds)) {
    throw TransportError(std::string(what) +
                         ": timeout must be finite and >= 0");
  }
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(
                                                       tv.tv_sec)) *
                                        1e6);
  // SO_RCVTIMEO/SO_SNDTIMEO treat {0, 0} as "no timeout"; round a tiny
  // positive request up to the granularity floor instead of disabling.
  if (seconds > 0.0 && tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
  return tv;
}

} // namespace

void Socket::set_send_timeout(double seconds) {
  const timeval tv = timeout_to_timeval(seconds, "set_send_timeout");
  if (::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    throw TransportError(errno_string("setsockopt(SO_SNDTIMEO)"));
  }
}

void Socket::set_recv_timeout(double seconds) {
  const timeval tv = timeout_to_timeval(seconds, "set_recv_timeout");
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    throw TransportError(errno_string("setsockopt(SO_RCVTIMEO)"));
  }
}

void Socket::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

ListenSocket::ListenSocket(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw TransportError(errno_string("socket"));
  try {
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    const sockaddr_in addr = loopback_address("127.0.0.1", port);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      throw TransportError(errno_string("bind"));
    }
    if (::listen(fd, 16) != 0) {
      throw TransportError(errno_string("listen"));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      throw TransportError(errno_string("getsockname"));
    }
    port_ = ntohs(bound.sin_port);
  } catch (...) {
    ::close(fd);
    throw;
  }
  fd_ = fd;
}

ListenSocket::~ListenSocket() { close(); }

ListenSocket::ListenSocket(ListenSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)) {}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

Socket ListenSocket::accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return Socket(); // listener closed (or fatal): signal loop exit
  }
}

void ListenSocket::shutdown() {
  // Reads fd_ but does not modify it, so it may run concurrently with a
  // thread blocked in accept(); close() alone would not unblock accept
  // on Linux (and mutating fd_ here would race the accept thread).
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void ListenSocket::close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

} // namespace tmhls::transport
