#include "transport/wire.hpp"

#include <bit>
#include <cmath>
#include <cstring>

#include "fixed/fixed_format.hpp"
#include "tonemap/pipeline.hpp"

namespace tmhls::transport::wire {

namespace {

// --- primitive little-endian encoding -------------------------------------
// Bytes are assembled and reassembled explicitly, so the on-wire order is
// fixed whatever the host's endianness.

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xffu));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xffu));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xffu));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xffu));
  }
}

void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_f32(std::vector<std::uint8_t>& out, float v) {
  put_u32(out, std::bit_cast<std::uint32_t>(v));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  TMHLS_REQUIRE(s.size() <= kMaxStringBytes,
                "wire: string field exceeds kMaxStringBytes: " +
                    std::to_string(s.size()));
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounded cursor over one payload. Every read checks the remaining
/// length and throws WireError naming the underrun — decoders never walk
/// past the declared payload.
class Reader {
public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() { return take(1)[0]; }

  std::uint16_t u16() {
    const auto b = take(2);
    return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
  }

  std::uint32_t u32() {
    const auto b = take(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    const auto b = take(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return v;
  }

  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  float f32() { return std::bit_cast<float>(u32()); }
  double f64() { return std::bit_cast<double>(u64()); }

  std::string string() {
    const std::uint32_t n = u32();
    if (n > kMaxStringBytes) {
      throw WireError("wire: string length " + std::to_string(n) +
                      " exceeds kMaxStringBytes");
    }
    const auto b = take(n);
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
  }

  /// Consume `n` raw bytes (bounds-checked like every other read) — the
  /// bulk form read_image uses to blit a plane payload in one go.
  std::span<const std::uint8_t> bytes(std::size_t n) { return take(n); }

  std::size_t remaining() const { return bytes_.size() - offset_; }

  /// Throws unless the payload was consumed exactly — trailing bytes mean
  /// the two endpoints disagree about the format.
  void expect_exhausted(const char* what) const {
    if (remaining() != 0) {
      throw WireError(std::string("wire: ") + what + " payload has " +
                      std::to_string(remaining()) + " trailing byte(s)");
    }
  }

private:
  std::span<const std::uint8_t> take(std::size_t n) {
    if (remaining() < n) {
      throw WireError("wire: payload truncated (need " + std::to_string(n) +
                      " bytes, have " + std::to_string(remaining()) + ")");
    }
    const auto view = bytes_.subspan(offset_, n);
    offset_ += n;
    return view;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t offset_ = 0;
};

// --- enum codes ------------------------------------------------------------
// Explicit on-wire codes, independent of the in-memory enum values, so a
// reordering refactor on one endpoint cannot silently change the protocol.

std::uint8_t code_of(tonemap::Datapath datapath) {
  // Code 0 was from_blur_kind in protocol version 3; unspecified is its
  // v4 successor with the same "follow the backend" meaning, so the code
  // is stable across the rename.
  switch (datapath) {
    case tonemap::Datapath::unspecified: return 0;
    case tonemap::Datapath::float32: return 1;
    case tonemap::Datapath::fixed_point: return 2;
  }
  throw WireError("wire: unencodable Datapath");
}

tonemap::Datapath datapath_of(std::uint8_t code) {
  switch (code) {
    case 0: return tonemap::Datapath::unspecified;
    case 1: return tonemap::Datapath::float32;
    case 2: return tonemap::Datapath::fixed_point;
  }
  throw WireError("wire: unknown Datapath code " + std::to_string(code));
}

std::uint8_t code_of(serve::QosClass qos) {
  switch (qos) {
    case serve::QosClass::best_effort: return 0;
    case serve::QosClass::standard: return 1;
    case serve::QosClass::critical: return 2;
  }
  throw WireError("wire: unencodable QosClass");
}

serve::QosClass qos_of(std::uint8_t code) {
  switch (code) {
    case 0: return serve::QosClass::best_effort;
    case 1: return serve::QosClass::standard;
    case 2: return serve::QosClass::critical;
  }
  throw WireError("wire: unknown QosClass code " + std::to_string(code));
}

std::uint8_t code_of(serve::DegradeLevel level) {
  switch (level) {
    case serve::DegradeLevel::none: return 0;
    case serve::DegradeLevel::reduced_blur: return 1;
    case serve::DegradeLevel::global_operator: return 2;
  }
  throw WireError("wire: unencodable DegradeLevel");
}

serve::DegradeLevel degrade_of(std::uint8_t code) {
  switch (code) {
    case 0: return serve::DegradeLevel::none;
    case 1: return serve::DegradeLevel::reduced_blur;
    case 2: return serve::DegradeLevel::global_operator;
  }
  throw WireError("wire: unknown DegradeLevel code " + std::to_string(code));
}

std::uint8_t code_of(ErrorCode code) {
  switch (code) {
    case ErrorCode::generic: return 0;
    case ErrorCode::invalid_argument: return 1;
    case ErrorCode::overloaded: return 2;
    case ErrorCode::deadline_exceeded: return 3;
  }
  throw WireError("wire: unencodable ErrorCode");
}

ErrorCode error_code_of(std::uint8_t code) {
  switch (code) {
    case 0: return ErrorCode::generic;
    case 1: return ErrorCode::invalid_argument;
    case 2: return ErrorCode::overloaded;
    case 3: return ErrorCode::deadline_exceeded;
  }
  throw WireError("wire: unknown ErrorCode code " + std::to_string(code));
}

std::uint8_t code_of(fixed::Round round) {
  switch (round) {
    case fixed::Round::truncate: return 0;
    case fixed::Round::toward_zero: return 1;
    case fixed::Round::half_up: return 2;
    case fixed::Round::half_even: return 3;
  }
  throw WireError("wire: unencodable Round");
}

fixed::Round round_of(std::uint8_t code) {
  switch (code) {
    case 0: return fixed::Round::truncate;
    case 1: return fixed::Round::toward_zero;
    case 2: return fixed::Round::half_up;
    case 3: return fixed::Round::half_even;
  }
  throw WireError("wire: unknown Round code " + std::to_string(code));
}

std::uint8_t code_of(fixed::Overflow overflow) {
  switch (overflow) {
    case fixed::Overflow::saturate: return 0;
    case fixed::Overflow::wrap: return 1;
  }
  throw WireError("wire: unencodable Overflow");
}

fixed::Overflow overflow_of(std::uint8_t code) {
  switch (code) {
    case 0: return fixed::Overflow::saturate;
    case 1: return fixed::Overflow::wrap;
  }
  throw WireError("wire: unknown Overflow code " + std::to_string(code));
}

// --- composites ------------------------------------------------------------

void put_fixed_format(std::vector<std::uint8_t>& out,
                      const fixed::FixedFormat& format) {
  put_u8(out, static_cast<std::uint8_t>(format.width()));
  put_u8(out, static_cast<std::uint8_t>(format.int_bits()));
  put_u8(out, code_of(format.round()));
  put_u8(out, code_of(format.overflow()));
}

fixed::FixedFormat read_fixed_format(Reader& in) {
  const int width = in.u8();
  const int int_bits = in.u8();
  const fixed::Round round = round_of(in.u8());
  const fixed::Overflow overflow = overflow_of(in.u8());
  // Validate here so a hostile width surfaces as WireError, not as the
  // constructor's InvalidArgument (which servers treat as an execution
  // error instead of a protocol violation).
  if (width < 1 || width > 32 || int_bits < 1 || int_bits > width) {
    throw WireError("wire: invalid fixed-point format " +
                    std::to_string(width) + "/" + std::to_string(int_bits));
  }
  return fixed::FixedFormat(width, int_bits, round, overflow);
}

void put_options(std::vector<std::uint8_t>& out,
                 const tonemap::PipelineOptions& opt) {
  put_f64(out, opt.sigma);
  put_i32(out, opt.radius);
  put_string(out, opt.backend);
  put_u8(out, code_of(opt.datapath));
  put_i32(out, opt.threads);
  put_fixed_format(out, opt.fixed.data);
  put_fixed_format(out, opt.fixed.accumulator);
  put_f32(out, opt.display_gamma);
  put_f32(out, opt.normalization_scale);
  put_f32(out, opt.brightness);
  put_f32(out, opt.contrast);
}

tonemap::PipelineOptions read_options(Reader& in) {
  tonemap::PipelineOptions opt;
  opt.sigma = in.f64();
  opt.radius = in.i32();
  opt.backend = in.string();
  opt.datapath = datapath_of(in.u8());
  opt.threads = in.i32();
  opt.fixed.data = read_fixed_format(in);
  opt.fixed.accumulator = read_fixed_format(in);
  opt.display_gamma = in.f32();
  opt.normalization_scale = in.f32();
  opt.brightness = in.f32();
  opt.contrast = in.f32();
  return opt;
}

void put_image(std::vector<std::uint8_t>& out, const img::ImageF& image) {
  TMHLS_REQUIRE(!image.empty(), "wire: cannot encode an empty image");
  TMHLS_REQUIRE(image.width() <= kMaxDimension &&
                    image.height() <= kMaxDimension,
                "wire: image dimensions exceed kMaxDimension");
  put_u32(out, static_cast<std::uint32_t>(image.width()));
  put_u32(out, static_cast<std::uint32_t>(image.height()));
  put_u32(out, static_cast<std::uint32_t>(image.channels()));
  out.reserve(out.size() + image.sample_count() * 4);
  for (float v : image.samples()) put_f32(out, v);
}

img::ImageF read_image(Reader& in) {
  const std::uint32_t width = in.u32();
  const std::uint32_t height = in.u32();
  const std::uint32_t channels = in.u32();
  if (width < 1 || width > static_cast<std::uint32_t>(kMaxDimension) ||
      height < 1 || height > static_cast<std::uint32_t>(kMaxDimension)) {
    throw WireError("wire: image dimensions " + std::to_string(width) + "x" +
                    std::to_string(height) + " outside [1, " +
                    std::to_string(kMaxDimension) + "]");
  }
  if (channels < 1 || channels > 4) {
    throw WireError("wire: image channels " + std::to_string(channels) +
                    " outside [1, 4]");
  }
  const std::size_t samples = static_cast<std::size_t>(width) *
                              static_cast<std::size_t>(height) *
                              static_cast<std::size_t>(channels);
  // The declared geometry must be backed by actual payload bytes *before*
  // the image is allocated: an attacker-controlled header must never turn
  // into an attacker-sized allocation.
  if (in.remaining() < samples * 4) {
    throw WireError("wire: image data truncated (" +
                    std::to_string(samples * 4) + " bytes declared, " +
                    std::to_string(in.remaining()) + " available)");
  }
  // On a pooled thread (transport reader loops install the service
  // pool's scope) this construction recycles a retained plane — the wire
  // decodes straight into pool memory with no intermediate copy.
  img::ImageF image(static_cast<int>(width), static_cast<int>(height),
                    static_cast<int>(channels));
  if constexpr (std::endian::native == std::endian::little) {
    // Samples are consecutive little-endian f32 words, which on a
    // little-endian host is exactly the plane's memory representation:
    // one bounds-checked memcpy instead of per-sample reassembly.
    const auto raw = in.bytes(samples * 4);
    std::memcpy(image.samples().data(), raw.data(), raw.size());
  } else {
    for (float& v : image.samples()) v = in.f32();
  }
  return image;
}

/// Prepend the header for `type` over `payload` and return the complete
/// message.
std::vector<std::uint8_t> seal(MessageType type,
                               std::vector<std::uint8_t> payload) {
  TMHLS_REQUIRE(payload.size() <= kMaxPayloadBytes,
                "wire: payload exceeds kMaxPayloadBytes");
  Header header;
  header.type = type;
  header.payload_bytes = static_cast<std::uint32_t>(payload.size());
  header.checksum = checksum(payload);
  const auto head = encode_header(header);
  // memcpy into a pre-sized vector: the insert-after-reserve form trips a
  // GCC 12 -Wstringop-overflow false positive under -Werror.
  std::vector<std::uint8_t> message(head.size() + payload.size());
  std::memcpy(message.data(), head.data(), head.size());
  if (!payload.empty()) {
    std::memcpy(message.data() + head.size(), payload.data(), payload.size());
  }
  return message;
}

} // namespace

std::uint32_t checksum(std::span<const std::uint8_t> payload) {
  // FNV-1a 32-bit.
  std::uint32_t hash = 2166136261u;
  for (std::uint8_t byte : payload) {
    hash ^= byte;
    hash *= 16777619u;
  }
  return hash;
}

std::array<std::uint8_t, kHeaderBytes> encode_header(const Header& header) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(kHeaderBytes);
  bytes.insert(bytes.end(), kMagic.begin(), kMagic.end());
  put_u16(bytes, header.version);
  put_u16(bytes, static_cast<std::uint16_t>(header.type));
  put_u32(bytes, header.payload_bytes);
  put_u32(bytes, header.checksum);
  std::array<std::uint8_t, kHeaderBytes> out{};
  std::memcpy(out.data(), bytes.data(), kHeaderBytes);
  return out;
}

Header decode_header(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != kHeaderBytes) {
    throw WireError("wire: header must be " + std::to_string(kHeaderBytes) +
                    " bytes, got " + std::to_string(bytes.size()));
  }
  for (std::size_t i = 0; i < kMagic.size(); ++i) {
    if (bytes[i] != kMagic[i]) throw WireError("wire: bad magic");
  }
  Reader in(bytes.subspan(kMagic.size()));
  Header header;
  header.version = in.u16();
  const std::uint16_t type = in.u16();
  header.payload_bytes = in.u32();
  header.checksum = in.u32();
  if (header.version != kVersion) {
    throw WireError("wire: unsupported protocol version " +
                    std::to_string(header.version));
  }
  if (type < static_cast<std::uint16_t>(MessageType::request) ||
      type > static_cast<std::uint16_t>(MessageType::stream_closed)) {
    throw WireError("wire: unknown message type " + std::to_string(type));
  }
  header.type = static_cast<MessageType>(type);
  if (header.payload_bytes > kMaxPayloadBytes) {
    throw WireError("wire: payload size " +
                    std::to_string(header.payload_bytes) +
                    " exceeds kMaxPayloadBytes");
  }
  return header;
}

void verify_checksum(const Header& header,
                     std::span<const std::uint8_t> payload) {
  if (payload.size() != header.payload_bytes) {
    throw WireError("wire: payload size mismatch (header declares " +
                    std::to_string(header.payload_bytes) + ", got " +
                    std::to_string(payload.size()) + ")");
  }
  if (checksum(payload) != header.checksum) {
    throw WireError("wire: payload checksum mismatch");
  }
}

std::vector<std::uint8_t> encode_request(const Request& request) {
  TMHLS_REQUIRE(request.job.blur_shards >= 1 &&
                    request.job.blur_shards <= serve::kMaxBlurShards,
                "wire: blur_shards outside [1, kMaxBlurShards]");
  TMHLS_REQUIRE(!request.job.deadline_seconds ||
                    (std::isfinite(*request.job.deadline_seconds) &&
                     *request.job.deadline_seconds >= 0.0),
                "wire: deadline_seconds must be finite and >= 0");
  std::vector<std::uint8_t> payload;
  put_u64(payload, request.request_id);
  put_u32(payload, static_cast<std::uint32_t>(request.job.blur_shards));
  put_u8(payload, code_of(request.job.qos));
  // "No deadline" travels as an explicit flag byte (v3): the f64 that
  // follows is only meaningful when the flag is 1, and must be zero
  // otherwise so every no-deadline request has exactly one encoding.
  put_u8(payload, request.job.deadline_seconds.has_value() ? 1 : 0);
  put_f64(payload, request.job.deadline_seconds.value_or(0.0));
  put_options(payload, request.job.options);
  put_image(payload, request.job.frame);
  return seal(MessageType::request, std::move(payload));
}

Request decode_request(std::span<const std::uint8_t> payload) {
  Reader in(payload);
  Request request;
  request.request_id = in.u64();
  const std::uint32_t blur_shards = in.u32();
  if (blur_shards < 1 ||
      blur_shards > static_cast<std::uint32_t>(serve::kMaxBlurShards)) {
    throw WireError("wire: blur_shards " + std::to_string(blur_shards) +
                    " outside [1, " + std::to_string(serve::kMaxBlurShards) +
                    "]");
  }
  request.job.blur_shards = static_cast<int>(blur_shards);
  request.job.qos = qos_of(in.u8());
  const std::uint8_t has_deadline = in.u8();
  if (has_deadline > 1) {
    throw WireError("wire: deadline flag must be 0 or 1, got " +
                    std::to_string(has_deadline));
  }
  const double deadline = in.f64();
  // The deadline is relative (seconds from server-side admission), so no
  // clock synchronisation is assumed — but hostile bit patterns (NaN,
  // infinities, negatives) are a protocol violation, not an execution
  // error. An absent deadline must carry exactly 0.0 so each request has
  // a single canonical encoding.
  if (has_deadline == 1) {
    if (!std::isfinite(deadline) || deadline < 0.0) {
      throw WireError("wire: deadline_seconds must be finite and >= 0");
    }
    request.job.deadline_seconds = deadline;
  } else if (deadline != 0.0) {
    throw WireError("wire: deadline value must be 0 when the flag is 0");
  }
  request.job.options = read_options(in);
  request.job.frame = read_image(in);
  in.expect_exhausted("request");
  return request;
}

std::vector<std::uint8_t> encode_response(const Response& response) {
  std::vector<std::uint8_t> payload;
  put_u64(payload, response.request_id);
  put_u64(payload, response.result.job_id);
  put_i32(payload, response.result.shard);
  put_u8(payload, code_of(response.result.degrade));
  put_string(payload, response.result.backend);
  put_f64(payload, response.result.queue_seconds);
  put_f64(payload, response.result.service_seconds);
  put_image(payload, response.result.output);
  return seal(MessageType::response, std::move(payload));
}

Response decode_response(std::span<const std::uint8_t> payload) {
  Reader in(payload);
  Response response;
  response.request_id = in.u64();
  response.result.job_id = in.u64();
  response.result.shard = in.i32();
  response.result.degrade = degrade_of(in.u8());
  response.result.backend = in.string();
  response.result.queue_seconds = in.f64();
  response.result.service_seconds = in.f64();
  response.result.output = read_image(in);
  in.expect_exhausted("response");
  return response;
}

std::vector<std::uint8_t> encode_error(const ErrorReply& reply) {
  std::vector<std::uint8_t> payload;
  put_u64(payload, reply.request_id);
  put_u8(payload, code_of(reply.code));
  // Clamp rather than reject: an over-long what() string must not turn an
  // error reply into a second failure.
  std::string message = reply.message;
  if (message.size() > kMaxStringBytes) message.resize(kMaxStringBytes);
  put_string(payload, message);
  return seal(MessageType::error, std::move(payload));
}

ErrorReply decode_error(std::span<const std::uint8_t> payload) {
  Reader in(payload);
  ErrorReply reply;
  reply.request_id = in.u64();
  reply.code = error_code_of(in.u8());
  reply.message = in.string();
  in.expect_exhausted("error");
  return reply;
}

namespace {

std::uint8_t code_of(StreamStatus status) {
  switch (status) {
    case StreamStatus::closed: return 0;
    case StreamStatus::shed: return 1;
    case StreamStatus::failed: return 2;
  }
  throw WireError("wire: unencodable StreamStatus");
}

StreamStatus stream_status_of(std::uint8_t code) {
  switch (code) {
    case 0: return StreamStatus::closed;
    case 1: return StreamStatus::shed;
    case 2: return StreamStatus::failed;
  }
  throw WireError("wire: unknown StreamStatus code " +
                  std::to_string(code));
}

/// Shared bounds of the client-controllable StreamConfig fields —
/// encoders refuse what decoders would reject, so a conforming client
/// cannot emit a message a conforming server drops the connection for.
void check_stream_config(const stream::StreamConfig& config) {
  if (!std::isfinite(config.frame_interval_seconds) ||
      config.frame_interval_seconds <= 0.0 ||
      config.frame_interval_seconds > 3600.0) {
    throw WireError("wire: stream frame_interval_seconds must be in "
                    "(0, 3600]");
  }
  if (!std::isfinite(config.adaptation_rate) ||
      config.adaptation_rate <= 0.0 || config.adaptation_rate > 1.0) {
    throw WireError("wire: stream adaptation_rate must be in (0, 1]");
  }
  if (config.width < 1 || config.width > kMaxDimension ||
      config.height < 1 || config.height > kMaxDimension) {
    throw WireError("wire: stream geometry outside [1, kMaxDimension]");
  }
  if (config.pipeline_depth < 1 ||
      config.pipeline_depth > stream::kMaxStreamDepth) {
    throw WireError("wire: stream pipeline_depth outside [1, " +
                    std::to_string(stream::kMaxStreamDepth) + "]");
  }
  if (config.reorder_window < 0 ||
      config.reorder_window > stream::kMaxReorderWindow) {
    throw WireError("wire: stream reorder_window outside [0, " +
                    std::to_string(stream::kMaxReorderWindow) + "]");
  }
  if (config.credits < 1 || config.credits > stream::kMaxStreamCredits) {
    throw WireError("wire: stream credits outside [1, " +
                    std::to_string(stream::kMaxStreamCredits) + "]");
  }
}

} // namespace

std::vector<std::uint8_t> encode_stream_open(const StreamOpen& open) {
  check_stream_config(open.config);
  std::vector<std::uint8_t> payload;
  put_u64(payload, open.stream_id);
  put_u8(payload, code_of(open.config.qos));
  put_f64(payload, open.config.frame_interval_seconds);
  put_f64(payload, open.config.adaptation_rate);
  put_u32(payload, static_cast<std::uint32_t>(open.config.width));
  put_u32(payload, static_cast<std::uint32_t>(open.config.height));
  put_u32(payload, static_cast<std::uint32_t>(open.config.pipeline_depth));
  put_u32(payload, static_cast<std::uint32_t>(open.config.reorder_window));
  put_u32(payload, static_cast<std::uint32_t>(open.config.credits));
  put_options(payload, open.config.pipeline);
  return seal(MessageType::stream_open, std::move(payload));
}

StreamOpen decode_stream_open(std::span<const std::uint8_t> payload) {
  Reader in(payload);
  StreamOpen open;
  open.stream_id = in.u64();
  open.config.qos = qos_of(in.u8());
  open.config.frame_interval_seconds = in.f64();
  open.config.adaptation_rate = in.f64();
  open.config.width = static_cast<int>(in.u32());
  open.config.height = static_cast<int>(in.u32());
  open.config.pipeline_depth = static_cast<int>(in.u32());
  open.config.reorder_window = static_cast<int>(in.u32());
  open.config.credits = static_cast<int>(in.u32());
  check_stream_config(open.config);
  open.config.pipeline = read_options(in);
  in.expect_exhausted("stream_open");
  return open;
}

std::vector<std::uint8_t> encode_stream_opened(const StreamOpened& opened) {
  std::vector<std::uint8_t> payload;
  put_u64(payload, opened.stream_id);
  put_u32(payload, opened.credits);
  return seal(MessageType::stream_opened, std::move(payload));
}

StreamOpened decode_stream_opened(std::span<const std::uint8_t> payload) {
  Reader in(payload);
  StreamOpened opened;
  opened.stream_id = in.u64();
  opened.credits = in.u32();
  if (opened.credits < 1 ||
      opened.credits >
          static_cast<std::uint32_t>(stream::kMaxStreamCredits)) {
    throw WireError("wire: stream_opened credits outside [1, " +
                    std::to_string(stream::kMaxStreamCredits) + "]");
  }
  in.expect_exhausted("stream_opened");
  return opened;
}

std::vector<std::uint8_t> encode_stream_frame(const StreamFrame& frame) {
  std::vector<std::uint8_t> payload;
  put_u64(payload, frame.stream_id);
  put_u64(payload, frame.sequence);
  put_image(payload, frame.frame);
  return seal(MessageType::stream_frame, std::move(payload));
}

StreamFrame decode_stream_frame(std::span<const std::uint8_t> payload) {
  Reader in(payload);
  StreamFrame frame;
  frame.stream_id = in.u64();
  frame.sequence = in.u64();
  frame.frame = read_image(in);
  in.expect_exhausted("stream_frame");
  return frame;
}

std::vector<std::uint8_t> encode_stream_result(const StreamResult& result) {
  std::vector<std::uint8_t> payload;
  put_u64(payload, result.stream_id);
  put_u64(payload, result.sequence);
  put_u8(payload, code_of(result.rung));
  put_string(payload, result.backend);
  put_f64(payload, result.service_seconds);
  put_image(payload, result.output);
  return seal(MessageType::stream_result, std::move(payload));
}

StreamResult decode_stream_result(std::span<const std::uint8_t> payload) {
  Reader in(payload);
  StreamResult result;
  result.stream_id = in.u64();
  result.sequence = in.u64();
  result.rung = degrade_of(in.u8());
  result.backend = in.string();
  result.service_seconds = in.f64();
  result.output = read_image(in);
  in.expect_exhausted("stream_result");
  return result;
}

std::vector<std::uint8_t> encode_stream_credit(const StreamCredit& credit) {
  // Same range the decoder enforces: a correct peer never emits a grant
  // outside the flow-control window bounds.
  if (credit.credits < 1 ||
      credit.credits >
          static_cast<std::uint32_t>(stream::kMaxStreamCredits)) {
    throw WireError("wire: stream_credit credits outside [1, " +
                    std::to_string(stream::kMaxStreamCredits) + "]");
  }
  std::vector<std::uint8_t> payload;
  put_u64(payload, credit.stream_id);
  put_u32(payload, credit.credits);
  return seal(MessageType::stream_credit, std::move(payload));
}

StreamCredit decode_stream_credit(std::span<const std::uint8_t> payload) {
  Reader in(payload);
  StreamCredit credit;
  credit.stream_id = in.u64();
  credit.credits = in.u32();
  if (credit.credits < 1 ||
      credit.credits >
          static_cast<std::uint32_t>(stream::kMaxStreamCredits)) {
    throw WireError("wire: stream_credit credits outside [1, " +
                    std::to_string(stream::kMaxStreamCredits) + "]");
  }
  in.expect_exhausted("stream_credit");
  return credit;
}

std::vector<std::uint8_t> encode_stream_close(const StreamClose& close) {
  std::vector<std::uint8_t> payload;
  put_u64(payload, close.stream_id);
  return seal(MessageType::stream_close, std::move(payload));
}

StreamClose decode_stream_close(std::span<const std::uint8_t> payload) {
  Reader in(payload);
  StreamClose close;
  close.stream_id = in.u64();
  in.expect_exhausted("stream_close");
  return close;
}

std::vector<std::uint8_t> encode_stream_closed(const StreamClosed& closed) {
  std::vector<std::uint8_t> payload;
  put_u64(payload, closed.stream_id);
  put_u8(payload, code_of(closed.status));
  put_u64(payload, closed.frames_delivered);
  put_u64(payload, closed.frames_shed);
  put_u64(payload, closed.frames_expired);
  put_u32(payload, closed.rung_switches);
  // Clamp rather than reject, like encode_error: a long failure message
  // must not turn the stream's terminal message into a second failure.
  std::string message = closed.message;
  if (message.size() > kMaxStringBytes) message.resize(kMaxStringBytes);
  put_string(payload, message);
  return seal(MessageType::stream_closed, std::move(payload));
}

StreamClosed decode_stream_closed(std::span<const std::uint8_t> payload) {
  Reader in(payload);
  StreamClosed closed;
  closed.stream_id = in.u64();
  closed.status = stream_status_of(in.u8());
  closed.frames_delivered = in.u64();
  closed.frames_shed = in.u64();
  closed.frames_expired = in.u64();
  closed.rung_switches = in.u32();
  closed.message = in.string();
  in.expect_exhausted("stream_closed");
  return closed;
}

} // namespace tmhls::transport::wire
