#include "transport/framing.hpp"

#include <array>

namespace tmhls::transport {

ReadMessageStatus read_message(Socket& socket, InboundMessage& message) {
  std::array<std::uint8_t, wire::kHeaderBytes> head{};
  switch (socket.recv_all(head)) {
    case ReadStatus::eof: return ReadMessageStatus::eof;
    case ReadStatus::error: return ReadMessageStatus::error;
    case ReadStatus::timeout: return ReadMessageStatus::timeout;
    case ReadStatus::ok: break;
  }
  // Throws WireError on malformed headers; the payload size is bounded by
  // kMaxPayloadBytes before anything is allocated.
  message.header = wire::decode_header(head);
  message.payload.assign(message.header.payload_bytes, 0);
  if (message.header.payload_bytes > 0) {
    const ReadStatus status = socket.recv_all(message.payload);
    if (status == ReadStatus::timeout) return ReadMessageStatus::timeout;
    if (status != ReadStatus::ok) {
      // EOF inside a message is a truncated stream, not a clean finish.
      return ReadMessageStatus::error;
    }
  }
  wire::verify_checksum(message.header, message.payload); // throws WireError
  return ReadMessageStatus::ok;
}

} // namespace tmhls::transport
