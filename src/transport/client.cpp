#include "transport/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "transport/framing.hpp"

namespace tmhls::transport {

namespace {

using Clock = std::chrono::steady_clock;

Socket connect_with_retry(const ClientOptions& options) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             options.connect_timeout_seconds));
  for (;;) {
    try {
      return Socket::connect(options.host, options.port);
    } catch (const TransportError&) {
      if (Clock::now() >= deadline) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
}

void apply_timeouts(Socket& socket, double seconds) {
  if (seconds > 0.0) {
    socket.set_send_timeout(seconds);
    socket.set_recv_timeout(seconds);
  }
}

} // namespace

Client::Client(const ClientOptions& options)
    : options_(options), socket_(connect_with_retry(options_)) {
  apply_timeouts(socket_, options_.request_timeout_seconds);
}

Client::Client(const std::string& host, std::uint16_t port)
    : Client(ClientOptions{host, port, 5.0}) {}

void Client::reconnect() {
  socket_ = connect_with_retry(options_);
  apply_timeouts(socket_, options_.request_timeout_seconds);
}

void Client::send_message(const std::vector<std::uint8_t>& message,
                          const char* what) {
  switch (socket_.send_all(message)) {
    case SendStatus::timeout:
      throw TimeoutError(std::string("send timed out while writing ") +
                         what);
    case SendStatus::error:
      throw TransportError(std::string("connection lost while sending ") +
                           what);
    case SendStatus::ok: break;
  }
}

std::uint64_t Client::submit(serve::FrameJob job) {
  TMHLS_REQUIRE(socket_.valid(), "Client::submit on a closed client");
  TMHLS_REQUIRE(streams_.empty(), "Client::submit while streams are open");
  wire::Request request;
  request.request_id = next_request_id_++;
  request.job = std::move(job);
  // encode_request validates the job against the wire bounds (non-empty
  // frame, dimensions, blur_shards, deadline) before anything crosses the
  // socket.
  send_message(wire::encode_request(request), "request");
  ++in_flight_;
  return request.request_id;
}

ClientResult Client::next_result() {
  TMHLS_REQUIRE(in_flight_ > 0,
                "Client::next_result with no outstanding requests");
  TMHLS_REQUIRE(socket_.valid(), "Client::next_result on a closed client");
  InboundMessage in;
  switch (read_message(socket_, in)) { // throws WireError on protocol rot
    case ReadMessageStatus::eof:
      throw TransportError(
          "server closed the connection with replies outstanding");
    case ReadMessageStatus::error:
      throw TransportError("connection lost while reading reply");
    case ReadMessageStatus::timeout:
      // The timeout may have split a message; the stream position is
      // unknown, so this connection is only good for closing.
      throw TimeoutError("receive timed out while waiting for reply");
    case ReadMessageStatus::ok: break;
  }
  if (in.header.type == wire::MessageType::response) {
    wire::Response response = wire::decode_response(in.payload);
    --in_flight_;
    ClientResult out;
    out.request_id = response.request_id;
    out.result = std::move(response.result);
    return out;
  }
  if (in.header.type == wire::MessageType::error) {
    const wire::ErrorReply reply = wire::decode_error(in.payload);
    --in_flight_;
    throw RemoteError(reply.request_id, reply.message, reply.code);
  }
  throw WireError("wire: server sent a request message");
}

serve::FrameResult Client::call(serve::FrameJob job) {
  TMHLS_REQUIRE(in_flight_ == 0,
                "Client::call with pipelined requests outstanding");
  const int attempts = 1 + std::max(0, options_.max_request_retries);
  // A deadlined job gets a socket bound even when none was configured:
  // the deadline plus a second of wire slack — a server that cannot
  // answer a deadlined request within its deadline has effectively hung.
  const double timeout =
      options_.request_timeout_seconds > 0.0
          ? options_.request_timeout_seconds
          : (job.deadline_seconds ? *job.deadline_seconds + 1.0 : 0.0);
  double backoff = options_.retry_backoff_seconds;
  for (int attempt = 0;; ++attempt) {
    const bool last = attempt + 1 >= attempts;
    try {
      if (!socket_.valid()) reconnect();
      apply_timeouts(socket_, timeout);
      // Keep the job for further attempts unless this is the last one.
      serve::FrameJob this_attempt;
      if (last) {
        this_attempt = std::move(job);
      } else {
        this_attempt = job;
      }
      submit(std::move(this_attempt));
      return next_result().result;
    } catch (const RemoteError&) {
      // The server answered (including typed overloaded /
      // deadline_exceeded): retrying blindly would just add load.
      throw;
    } catch (const WireError&) {
      // Protocol rot is a bug, not weather; surface it, don't retry.
      close();
      in_flight_ = 0;
      throw;
    } catch (const TransportError&) {
      // TimeoutError lands here too (it is-a TransportError): after a
      // timeout the stream position is unknown, so every retry starts
      // from a fresh connection.
      close();
      in_flight_ = 0;
      if (last) throw;
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff *= 2.0;
    }
  }
}

void Client::pump_stream_message() {
  TMHLS_REQUIRE(socket_.valid(),
                "Client stream operation on a closed client");
  InboundMessage in;
  switch (read_message(socket_, in)) { // throws WireError on protocol rot
    case ReadMessageStatus::eof:
      throw TransportError(
          "server closed the connection with streams open");
    case ReadMessageStatus::error:
      throw TransportError("connection lost while reading stream reply");
    case ReadMessageStatus::timeout:
      throw TimeoutError("receive timed out while waiting for stream reply");
    case ReadMessageStatus::ok: break;
  }
  switch (in.header.type) {
    case wire::MessageType::stream_opened: {
      const wire::StreamOpened opened = wire::decode_stream_opened(in.payload);
      const auto it = streams_.find(opened.stream_id);
      if (it == streams_.end()) {
        throw WireError("wire: server opened an unknown stream");
      }
      it->second.opened = true;
      it->second.credits = opened.credits;
      return;
    }
    case wire::MessageType::stream_result: {
      wire::StreamResult result = wire::decode_stream_result(in.payload);
      const auto it = streams_.find(result.stream_id);
      // A delivery implicitly returns the frame's credit.
      if (it != streams_.end() && !it->second.closed) ++it->second.credits;
      ClientStreamResult out;
      out.stream_id = result.stream_id;
      out.sequence = result.sequence;
      out.output = std::move(result.output);
      out.rung = result.rung;
      out.backend = std::move(result.backend);
      out.service_seconds = result.service_seconds;
      stream_results_.push_back(std::move(out));
      return;
    }
    case wire::MessageType::stream_credit: {
      const wire::StreamCredit credit = wire::decode_stream_credit(in.payload);
      const auto it = streams_.find(credit.stream_id);
      if (it != streams_.end() && !it->second.closed) {
        it->second.credits += credit.credits;
      }
      return;
    }
    case wire::MessageType::stream_closed: {
      wire::StreamClosed closed = wire::decode_stream_closed(in.payload);
      const auto it = streams_.find(closed.stream_id);
      if (it == streams_.end()) {
        throw WireError("wire: server closed an unknown stream");
      }
      it->second.closed = true;
      it->second.closed_info = std::move(closed);
      return;
    }
    case wire::MessageType::error: {
      const wire::ErrorReply reply = wire::decode_error(in.payload);
      // A stream-scoped per-frame rejection (window exhausted, malformed
      // frame): the frame never entered the stream server-side, so its
      // credit comes back here. The stream itself survives.
      const auto it = streams_.find(reply.request_id);
      if (it != streams_.end() && it->second.opened && !it->second.closed) {
        ++it->second.credits;
      }
      throw RemoteError(reply.request_id, reply.message, reply.code);
    }
    default:
      throw WireError("wire: server sent an unexpected message type "
                      "during streaming");
  }
}

std::uint64_t Client::open_stream(stream::StreamConfig config) {
  TMHLS_REQUIRE(socket_.valid(), "Client::open_stream on a closed client");
  TMHLS_REQUIRE(in_flight_ == 0,
                "Client::open_stream with pipelined requests outstanding");
  const std::uint64_t id = next_stream_id_++;
  wire::StreamOpen open;
  open.stream_id = id;
  open.config = std::move(config);
  // encode_stream_open validates the config against the wire bounds
  // before anything crosses the socket.
  const std::vector<std::uint8_t> message = wire::encode_stream_open(open);
  streams_.emplace(id, StreamSession{});
  try {
    send_message(message, "stream open");
    while (!streams_.at(id).opened) pump_stream_message();
  } catch (...) {
    streams_.erase(id);
    throw;
  }
  return id;
}

void Client::send_stream_frame(std::uint64_t stream_id,
                               std::uint64_t sequence,
                               const img::ImageF& frame) {
  const auto it = streams_.find(stream_id);
  TMHLS_REQUIRE(it != streams_.end() && it->second.opened,
                "Client::send_stream_frame on an unknown stream");
  // Enforce the flow-control window client-side: block reading replies
  // (which buffer into stream_results_) until a credit frees up.
  while (!it->second.closed && it->second.credits == 0) {
    pump_stream_message();
  }
  if (it->second.closed) {
    const wire::StreamClosed& info = it->second.closed_info;
    const wire::ErrorCode code =
        info.status == wire::StreamStatus::shed ? wire::ErrorCode::overloaded
                                                : wire::ErrorCode::generic;
    throw RemoteError(stream_id,
                      info.status == wire::StreamStatus::shed
                          ? "stream shed by the server's rate controller"
                          : "stream terminated by the server: " +
                                info.message,
                      code);
  }
  wire::StreamFrame message;
  message.stream_id = stream_id;
  message.sequence = sequence;
  message.frame = frame;
  send_message(wire::encode_stream_frame(message), "stream frame");
  --it->second.credits;
}

ClientStreamResult Client::next_stream_result() {
  while (stream_results_.empty()) pump_stream_message();
  ClientStreamResult out = std::move(stream_results_.front());
  stream_results_.pop_front();
  return out;
}

wire::StreamClosed Client::close_stream(std::uint64_t stream_id) {
  const auto it = streams_.find(stream_id);
  TMHLS_REQUIRE(it != streams_.end() && it->second.opened,
                "Client::close_stream on an unknown stream");
  if (!it->second.closed) {
    wire::StreamClose close;
    close.stream_id = stream_id;
    send_message(wire::encode_stream_close(close), "stream close");
    while (!it->second.closed) pump_stream_message();
  }
  wire::StreamClosed info = std::move(it->second.closed_info);
  streams_.erase(it);
  return info;
}

std::uint32_t Client::stream_credits(std::uint64_t stream_id) const {
  const auto it = streams_.find(stream_id);
  TMHLS_REQUIRE(it != streams_.end() && it->second.opened,
                "Client::stream_credits on an unknown stream");
  return it->second.credits;
}

void Client::finish_requests() { socket_.shutdown_write(); }

void Client::close() { socket_.close(); }

} // namespace tmhls::transport
