#include "transport/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "transport/framing.hpp"

namespace tmhls::transport {

namespace {

using Clock = std::chrono::steady_clock;

Socket connect_with_retry(const ClientOptions& options) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             options.connect_timeout_seconds));
  for (;;) {
    try {
      return Socket::connect(options.host, options.port);
    } catch (const TransportError&) {
      if (Clock::now() >= deadline) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
}

void apply_timeouts(Socket& socket, double seconds) {
  if (seconds > 0.0) {
    socket.set_send_timeout(seconds);
    socket.set_recv_timeout(seconds);
  }
}

} // namespace

Client::Client(const ClientOptions& options)
    : options_(options), socket_(connect_with_retry(options_)) {
  apply_timeouts(socket_, options_.request_timeout_seconds);
}

Client::Client(const std::string& host, std::uint16_t port)
    : Client(ClientOptions{host, port, 5.0}) {}

void Client::reconnect() {
  socket_ = connect_with_retry(options_);
  apply_timeouts(socket_, options_.request_timeout_seconds);
}

std::uint64_t Client::submit(serve::FrameJob job) {
  TMHLS_REQUIRE(socket_.valid(), "Client::submit on a closed client");
  wire::Request request;
  request.request_id = next_request_id_++;
  request.job = std::move(job);
  // encode_request validates the job against the wire bounds (non-empty
  // frame, dimensions, blur_shards, deadline) before anything crosses the
  // socket.
  switch (socket_.send_all(wire::encode_request(request))) {
    case SendStatus::timeout:
      throw TimeoutError("send timed out while writing request");
    case SendStatus::error:
      throw TransportError("connection lost while sending request");
    case SendStatus::ok: break;
  }
  ++in_flight_;
  return request.request_id;
}

ClientResult Client::next_result() {
  TMHLS_REQUIRE(in_flight_ > 0,
                "Client::next_result with no outstanding requests");
  TMHLS_REQUIRE(socket_.valid(), "Client::next_result on a closed client");
  InboundMessage in;
  switch (read_message(socket_, in)) { // throws WireError on protocol rot
    case ReadMessageStatus::eof:
      throw TransportError(
          "server closed the connection with replies outstanding");
    case ReadMessageStatus::error:
      throw TransportError("connection lost while reading reply");
    case ReadMessageStatus::timeout:
      // The timeout may have split a message; the stream position is
      // unknown, so this connection is only good for closing.
      throw TimeoutError("receive timed out while waiting for reply");
    case ReadMessageStatus::ok: break;
  }
  if (in.header.type == wire::MessageType::response) {
    wire::Response response = wire::decode_response(in.payload);
    --in_flight_;
    ClientResult out;
    out.request_id = response.request_id;
    out.result = std::move(response.result);
    return out;
  }
  if (in.header.type == wire::MessageType::error) {
    const wire::ErrorReply reply = wire::decode_error(in.payload);
    --in_flight_;
    throw RemoteError(reply.request_id, reply.message, reply.code);
  }
  throw WireError("wire: server sent a request message");
}

serve::FrameResult Client::call(serve::FrameJob job) {
  TMHLS_REQUIRE(in_flight_ == 0,
                "Client::call with pipelined requests outstanding");
  const int attempts = 1 + std::max(0, options_.max_request_retries);
  // A deadlined job gets a socket bound even when none was configured:
  // the deadline plus a second of wire slack — a server that cannot
  // answer a deadlined request within its deadline has effectively hung.
  const double timeout =
      options_.request_timeout_seconds > 0.0
          ? options_.request_timeout_seconds
          : (job.deadline_seconds > 0.0 ? job.deadline_seconds + 1.0 : 0.0);
  double backoff = options_.retry_backoff_seconds;
  for (int attempt = 0;; ++attempt) {
    const bool last = attempt + 1 >= attempts;
    try {
      if (!socket_.valid()) reconnect();
      apply_timeouts(socket_, timeout);
      // Keep the job for further attempts unless this is the last one.
      serve::FrameJob this_attempt;
      if (last) {
        this_attempt = std::move(job);
      } else {
        this_attempt = job;
      }
      submit(std::move(this_attempt));
      return next_result().result;
    } catch (const RemoteError&) {
      // The server answered (including typed overloaded /
      // deadline_exceeded): retrying blindly would just add load.
      throw;
    } catch (const WireError&) {
      // Protocol rot is a bug, not weather; surface it, don't retry.
      close();
      in_flight_ = 0;
      throw;
    } catch (const TransportError&) {
      // TimeoutError lands here too (it is-a TransportError): after a
      // timeout the stream position is unknown, so every retry starts
      // from a fresh connection.
      close();
      in_flight_ = 0;
      if (last) throw;
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff *= 2.0;
    }
  }
}

void Client::finish_requests() { socket_.shutdown_write(); }

void Client::close() { socket_.close(); }

} // namespace tmhls::transport
