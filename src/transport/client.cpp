#include "transport/client.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "transport/framing.hpp"

namespace tmhls::transport {

namespace {

using Clock = std::chrono::steady_clock;

Socket connect_with_retry(const ClientOptions& options) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             options.connect_timeout_seconds));
  for (;;) {
    try {
      return Socket::connect(options.host, options.port);
    } catch (const TransportError&) {
      if (Clock::now() >= deadline) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
}

} // namespace

Client::Client(const ClientOptions& options)
    : socket_(connect_with_retry(options)) {}

Client::Client(const std::string& host, std::uint16_t port)
    : Client(ClientOptions{host, port, 5.0}) {}

std::uint64_t Client::submit(serve::FrameJob job) {
  TMHLS_REQUIRE(socket_.valid(), "Client::submit on a closed client");
  wire::Request request;
  request.request_id = next_request_id_++;
  request.job = std::move(job);
  // encode_request validates the job against the wire bounds (non-empty
  // frame, dimensions, blur_shards) before anything crosses the socket.
  if (!socket_.send_all(wire::encode_request(request))) {
    throw TransportError("connection lost while sending request");
  }
  ++in_flight_;
  return request.request_id;
}

ClientResult Client::next_result() {
  TMHLS_REQUIRE(in_flight_ > 0,
                "Client::next_result with no outstanding requests");
  TMHLS_REQUIRE(socket_.valid(), "Client::next_result on a closed client");
  InboundMessage in;
  switch (read_message(socket_, in)) { // throws WireError on protocol rot
    case ReadMessageStatus::eof:
      throw TransportError(
          "server closed the connection with replies outstanding");
    case ReadMessageStatus::error:
      throw TransportError("connection lost while reading reply");
    case ReadMessageStatus::ok: break;
  }
  if (in.header.type == wire::MessageType::response) {
    wire::Response response = wire::decode_response(in.payload);
    --in_flight_;
    ClientResult out;
    out.request_id = response.request_id;
    out.result = std::move(response.result);
    return out;
  }
  if (in.header.type == wire::MessageType::error) {
    const wire::ErrorReply reply = wire::decode_error(in.payload);
    --in_flight_;
    throw RemoteError(reply.request_id, reply.message);
  }
  throw WireError("wire: server sent a request message");
}

serve::FrameResult Client::call(serve::FrameJob job) {
  TMHLS_REQUIRE(in_flight_ == 0,
                "Client::call with pipelined requests outstanding");
  submit(std::move(job));
  return next_result().result;
}

void Client::finish_requests() { socket_.shutdown_write(); }

void Client::close() { socket_.close(); }

} // namespace tmhls::transport
