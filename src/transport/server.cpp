#include "transport/server.hpp"

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "transport/framing.hpp"

namespace tmhls::transport {

namespace {

using namespace std::chrono_literals;

/// How long the writer waits on the oldest outstanding future before
/// re-scanning the window for any other future that became ready —
/// the poll granularity of out-of-completion-order response writing.
constexpr auto kWriterScanInterval = 2ms;

} // namespace

void validate(const ServerOptions& options) {
  TMHLS_REQUIRE(options.max_in_flight_per_connection >= 1,
                "ServerOptions::max_in_flight_per_connection must be >= 1, "
                "got " +
                    std::to_string(options.max_in_flight_per_connection));
  TMHLS_REQUIRE(options.max_connections >= 1,
                "ServerOptions::max_connections must be >= 1, got " +
                    std::to_string(options.max_connections));
}

/// One served connection: the socket, the window of submitted-but-
/// unanswered requests (shared between the reader and writer threads,
/// guarded by `mutex`), and the two threads themselves.
struct Server::Connection {
  /// One accepted request awaiting its reply. Either `future` is valid
  /// (the job reached the service) or `immediate_error` carries the
  /// submit-time failure — never both.
  struct PendingReply {
    std::uint64_t request_id = 0;
    std::future<serve::FrameResult> future;
    bool immediate_error = false;
    wire::ErrorCode error_code = wire::ErrorCode::generic;
    std::string error_message;
  };

  Socket socket;
  std::mutex mutex;
  std::condition_variable window_open;   ///< reader waits for a window slot
  std::condition_variable pending_ready; ///< writer waits for work / eof
  std::deque<PendingReply> pending;
  bool reader_done = false;  ///< no further requests will be pushed
  bool write_failed = false; ///< peer gone: drain futures, skip writes
  std::atomic<bool> reader_exited{false};
  std::atomic<bool> writer_exited{false};
  std::thread reader;
  std::thread writer;

  bool finished() const {
    return reader_exited.load(std::memory_order_acquire) &&
           writer_exited.load(std::memory_order_acquire);
  }
};

namespace {

/// Options pass validation before any resource (service threads, bound
/// port) is acquired in the member-initialiser list.
ServerOptions checked(ServerOptions options) {
  validate(options);
  serve::validate(options.service);
  return options;
}

/// Map a server-side failure onto the typed wire code, so a remote client
/// sees the same category a co-located caller's exception type carries.
wire::ErrorCode classify(const std::exception& e) {
  if (dynamic_cast<const serve::Overloaded*>(&e) != nullptr) {
    return wire::ErrorCode::overloaded;
  }
  if (dynamic_cast<const serve::DeadlineExceeded*>(&e) != nullptr) {
    return wire::ErrorCode::deadline_exceeded;
  }
  if (dynamic_cast<const InvalidArgument*>(&e) != nullptr) {
    return wire::ErrorCode::invalid_argument;
  }
  return wire::ErrorCode::generic;
}

} // namespace

Server::Server(ServerOptions options)
    : options_(checked(std::move(options))), service_(options_.service),
      listener_(options_.port) {
  port_ = listener_.port();
  accept_thread_ = std::thread([this] { accept_loop(); });
}

Server::~Server() { stop(); }

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_accepted = connections_accepted_.load();
  s.requests_received = requests_received_.load();
  s.responses_sent = responses_sent_.load();
  s.errors_sent = errors_sent_.load();
  s.requests_shed = requests_shed_.load();
  s.requests_expired = requests_expired_.load();
  s.protocol_errors = protocol_errors_.load();
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const auto& connection : connections_) {
      if (!connection->finished()) ++s.connections_active;
    }
  }
  return s;
}

void Server::stop() {
  stopping_.store(true);
  // Wake the accept thread, join it, and only then close the listener fd
  // — closing while accept() still reads it would be a data race.
  listener_.shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  std::lock_guard<std::mutex> lock(connections_mutex_);
  // Clean drain: stop reading new requests; readers observe EOF and
  // retire, writers flush every reply already in the window, then exit.
  for (auto& connection : connections_) connection->socket.shutdown_read();
  for (auto& connection : connections_) {
    if (connection->reader.joinable()) connection->reader.join();
    if (connection->writer.joinable()) connection->writer.join();
  }
  connections_.clear();
}

void Server::reap_finished_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->finished()) {
      if ((*it)->reader.joinable()) (*it)->reader.join();
      if ((*it)->writer.joinable()) (*it)->writer.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::accept_loop() {
  for (;;) {
    Socket socket = listener_.accept();
    if (!socket.valid() || stopping_.load()) return;
    std::lock_guard<std::mutex> lock(connections_mutex_);
    reap_finished_locked();
    if (static_cast<int>(connections_.size()) >= options_.max_connections) {
      continue; // over capacity: the socket closes as it goes out of scope
    }
    auto connection = std::make_unique<Connection>();
    connection->socket = std::move(socket);
    Connection& c = *connection;
    connections_.push_back(std::move(connection));
    try {
      c.reader = std::thread([this, &c] { reader_loop(c); });
      c.writer = std::thread([this, &c] { writer_loop(c); });
    } catch (...) {
      // Thread spawn failure: tear this connection down, keep serving.
      c.socket.shutdown_both();
      if (c.reader.joinable()) c.reader.join();
      {
        std::lock_guard<std::mutex> state_lock(c.mutex);
        c.reader_done = true;
      }
      c.pending_ready.notify_all();
      if (c.writer.joinable()) c.writer.join();
      connections_.pop_back();
      continue;
    }
    connections_accepted_.fetch_add(1);
  }
}

void Server::reader_loop(Connection& c) {
  for (;;) {
    InboundMessage in;
    ReadMessageStatus status;
    try {
      status = read_message(c.socket, in);
    } catch (const WireError&) {
      // The stream is unsynchronised (bad magic/version, oversized or
      // checksum-failing payload): this connection cannot be trusted.
      // Cut it — the service and every other connection keep running.
      protocol_errors_.fetch_add(1);
      c.socket.shutdown_both();
      break;
    }
    if (status == ReadMessageStatus::eof) break; // client finished cleanly
    if (status != ReadMessageStatus::ok) {
      // error, or timeout if a read bound was ever set on this socket:
      // either way the stream position is unknown.
      protocol_errors_.fetch_add(1);
      break;
    }
    wire::Request request;
    try {
      if (in.header.type != wire::MessageType::request) {
        throw WireError("wire: client sent a non-request message");
      }
      request = wire::decode_request(in.payload);
    } catch (const WireError&) {
      protocol_errors_.fetch_add(1);
      c.socket.shutdown_both();
      break;
    }
    requests_received_.fetch_add(1);

    // Bounded in-flight window: while it is full the reader stops pulling
    // bytes off the socket, so over-pipelining clients are throttled by
    // TCP flow control instead of server memory.
    {
      std::unique_lock<std::mutex> lock(c.mutex);
      c.window_open.wait(lock, [this, &c] {
        return c.pending.size() <
               static_cast<std::size_t>(options_.max_in_flight_per_connection);
      });
    }

    Connection::PendingReply reply;
    reply.request_id = request.request_id;
    try {
      // May block on the service's admission queue (critical/standard) —
      // more backpressure, same propagation path. Best-effort jobs are
      // shed with Overloaded instead of blocking here.
      reply.future = service_.submit(std::move(request.job));
    } catch (const std::exception& e) {
      // Submit-time rejection (structural, or typed admission shed):
      // answered like any other per-request failure with its typed code;
      // the connection continues.
      reply.immediate_error = true;
      reply.error_code = classify(e);
      reply.error_message = e.what();
    }
    {
      std::lock_guard<std::mutex> lock(c.mutex);
      c.pending.push_back(std::move(reply));
    }
    c.pending_ready.notify_one();
  }
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    c.reader_done = true;
  }
  c.pending_ready.notify_one();
  c.reader_exited.store(true, std::memory_order_release);
}

void Server::writer_loop(Connection& c) {
  const auto send = [this, &c](const std::vector<std::uint8_t>& message,
                               std::atomic<std::uint64_t>& counter) {
    // Count before writing (the service-counter convention): the client
    // can observe the reply the instant the last byte reaches the socket
    // buffer, possibly before this thread runs again — counting after
    // the write would let a stats() reader see the reply but not the
    // count.
    counter.fetch_add(1);
    if (c.socket.send_all(message) != SendStatus::ok) {
      // error and timeout alike: the peer is not draining this stream.
      std::lock_guard<std::mutex> lock(c.mutex);
      c.write_failed = true;
    }
  };
  // Error replies additionally advance the shed/expired counters their
  // typed code names.
  const auto send_error = [this, &send](std::uint64_t request_id,
                                        wire::ErrorCode code,
                                        const std::string& message,
                                        bool skip_write) {
    if (code == wire::ErrorCode::overloaded) requests_shed_.fetch_add(1);
    if (code == wire::ErrorCode::deadline_exceeded) {
      requests_expired_.fetch_add(1);
    }
    if (!skip_write) {
      send(wire::encode_error({request_id, code, message}), errors_sent_);
    }
  };

  for (;;) {
    std::unique_lock<std::mutex> lock(c.mutex);
    c.pending_ready.wait(
        lock, [&c] { return !c.pending.empty() || c.reader_done; });
    if (c.pending.empty()) break; // reader done and window drained

    // Prefer any reply that is already ready — responses go out as
    // futures resolve, not in submission order.
    std::size_t ready = c.pending.size();
    for (std::size_t i = 0; i < c.pending.size(); ++i) {
      Connection::PendingReply& p = c.pending[i];
      if (p.immediate_error ||
          p.future.wait_for(0s) == std::future_status::ready) {
        ready = i;
        break;
      }
    }
    if (ready == c.pending.size()) {
      // Nothing ready: wait briefly on the oldest, outside the lock so
      // the reader can keep appending. The reference stays valid —
      // deque::push_back does not invalidate references, and this thread
      // is the only one that erases.
      Connection::PendingReply& oldest = c.pending.front();
      lock.unlock();
      oldest.future.wait_for(kWriterScanInterval);
      continue;
    }

    Connection::PendingReply reply = std::move(c.pending[ready]);
    c.pending.erase(c.pending.begin() + static_cast<std::ptrdiff_t>(ready));
    const bool skip_write = c.write_failed;
    lock.unlock();
    c.window_open.notify_one();

    if (reply.immediate_error) {
      send_error(reply.request_id, reply.error_code, reply.error_message,
                 skip_write);
      continue;
    }
    try {
      wire::Response response;
      response.request_id = reply.request_id;
      response.result = reply.future.get(); // rethrows execution errors
      if (!skip_write) {
        send(wire::encode_response(response), responses_sent_);
      }
    } catch (const std::exception& e) {
      // DeadlineExceeded travels this path (dequeue / between-stage
      // expiry is discovered by the shard worker, after admission).
      send_error(reply.request_id, classify(e), e.what(), skip_write);
    }
    // skip_write drains the future without writing: the peer is gone but
    // every accepted job still completes (the service guarantees it, and
    // the drain keeps that visible here).
  }
  c.socket.shutdown_both();
  c.writer_exited.store(true, std::memory_order_release);
}

} // namespace tmhls::transport
