#include "transport/server.hpp"

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <map>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "image/plane_pool.hpp"
#include "transport/framing.hpp"

namespace tmhls::transport {

namespace {

using namespace std::chrono_literals;

/// How long the writer waits on the oldest outstanding future before
/// re-scanning the window for any other future that became ready —
/// the poll granularity of out-of-completion-order response writing.
constexpr auto kWriterScanInterval = 2ms;

} // namespace

void validate(const ServerOptions& options) {
  TMHLS_REQUIRE(options.max_in_flight_per_connection >= 1,
                "ServerOptions::max_in_flight_per_connection must be >= 1, "
                "got " +
                    std::to_string(options.max_in_flight_per_connection));
  TMHLS_REQUIRE(options.max_connections >= 1,
                "ServerOptions::max_connections must be >= 1, got " +
                    std::to_string(options.max_connections));
}

/// One served connection: the socket, the window of submitted-but-
/// unanswered requests (shared between the reader and writer threads,
/// guarded by `mutex`), and the two threads themselves.
struct Server::Connection {
  /// One accepted request awaiting its reply. Either `future` is valid
  /// (the job reached the service) or `immediate_error` carries the
  /// submit-time failure — never both.
  struct PendingReply {
    std::uint64_t request_id = 0;
    std::future<serve::FrameResult> future;
    bool immediate_error = false;
    wire::ErrorCode error_code = wire::ErrorCode::generic;
    std::string error_message;
  };

  Socket socket;
  std::mutex mutex;
  std::condition_variable window_open;   ///< reader waits for a window slot
  std::condition_variable pending_ready; ///< writer waits for work / eof
  std::deque<PendingReply> pending;
  /// Pre-encoded stream replies (results, credits, closed, stream-scoped
  /// errors), written FIFO ahead of `pending` — in-order delivery is part
  /// of the stream contract. Guarded by `mutex`.
  std::deque<std::vector<std::uint8_t>> outbox;
  /// Client-assigned stream id -> SessionManager stream id for every
  /// stream this connection owns. Reader-thread only — no lock.
  std::map<std::uint64_t, std::uint64_t> stream_ids;
  bool reader_done = false;  ///< no further requests will be pushed
  bool write_failed = false; ///< peer gone: drain futures, skip writes
  std::atomic<bool> reader_exited{false};
  std::atomic<bool> writer_exited{false};
  std::thread reader;
  std::thread writer;

  bool finished() const {
    return reader_exited.load(std::memory_order_acquire) &&
           writer_exited.load(std::memory_order_acquire);
  }
};

namespace {

/// Options pass validation before any resource (service threads, bound
/// port) is acquired in the member-initialiser list.
ServerOptions checked(ServerOptions options) {
  validate(options);
  serve::validate(options.service);
  return options;
}

/// Map a server-side failure onto the typed wire code, so a remote client
/// sees the same category a co-located caller's exception type carries.
wire::ErrorCode classify(const std::exception& e) {
  if (dynamic_cast<const serve::Overloaded*>(&e) != nullptr) {
    return wire::ErrorCode::overloaded;
  }
  if (dynamic_cast<const serve::DeadlineExceeded*>(&e) != nullptr) {
    return wire::ErrorCode::deadline_exceeded;
  }
  if (dynamic_cast<const InvalidArgument*>(&e) != nullptr) {
    return wire::ErrorCode::invalid_argument;
  }
  return wire::ErrorCode::generic;
}

} // namespace

Server::Server(ServerOptions options)
    : options_(checked(std::move(options))), service_(options_.service),
      sessions_(options_.sessions), listener_(options_.port) {
  port_ = listener_.port();
  accept_thread_ = std::thread([this] { accept_loop(); });
}

Server::~Server() { stop(); }

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_accepted = connections_accepted_.load();
  s.requests_received = requests_received_.load();
  s.responses_sent = responses_sent_.load();
  s.errors_sent = errors_sent_.load();
  s.requests_shed = requests_shed_.load();
  s.requests_expired = requests_expired_.load();
  s.protocol_errors = protocol_errors_.load();
  s.streams_opened = streams_opened_.load();
  s.streams_closed = streams_closed_.load();
  s.stream_frames_received = stream_frames_received_.load();
  s.stream_results_sent = stream_results_sent_.load();
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const auto& connection : connections_) {
      if (!connection->finished()) ++s.connections_active;
    }
  }
  return s;
}

void Server::stop() {
  stopping_.store(true);
  // Wake the accept thread, join it, and only then close the listener fd
  // — closing while accept() still reads it would be a data race.
  listener_.shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  std::lock_guard<std::mutex> lock(connections_mutex_);
  // Clean drain: stop reading new requests; readers observe EOF and
  // retire, writers flush every reply already in the window, then exit.
  for (auto& connection : connections_) connection->socket.shutdown_read();
  for (auto& connection : connections_) {
    if (connection->reader.joinable()) connection->reader.join();
    if (connection->writer.joinable()) connection->writer.join();
  }
  connections_.clear();
}

void Server::reap_finished_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->finished()) {
      if ((*it)->reader.joinable()) (*it)->reader.join();
      if ((*it)->writer.joinable()) (*it)->writer.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::accept_loop() {
  for (;;) {
    Socket socket = listener_.accept();
    if (!socket.valid() || stopping_.load()) return;
    std::lock_guard<std::mutex> lock(connections_mutex_);
    reap_finished_locked();
    if (static_cast<int>(connections_.size()) >= options_.max_connections) {
      continue; // over capacity: the socket closes as it goes out of scope
    }
    auto connection = std::make_unique<Connection>();
    connection->socket = std::move(socket);
    Connection& c = *connection;
    connections_.push_back(std::move(connection));
    try {
      c.reader = std::thread([this, &c] { reader_loop(c); });
      c.writer = std::thread([this, &c] { writer_loop(c); });
    } catch (...) {
      // Thread spawn failure: tear this connection down, keep serving.
      c.socket.shutdown_both();
      if (c.reader.joinable()) c.reader.join();
      {
        std::lock_guard<std::mutex> state_lock(c.mutex);
        c.reader_done = true;
      }
      c.pending_ready.notify_all();
      if (c.writer.joinable()) c.writer.join();
      connections_.pop_back();
      continue;
    }
    connections_accepted_.fetch_add(1);
  }
}

void Server::reader_loop(Connection& c) {
  // Wire payloads decode straight into service-pool planes: read_image's
  // destination ImageF is constructed on this thread, so installing the
  // scope here removes the per-request frame allocation once the pool is
  // warm. (Stream messages handled inline below run under the session
  // manager's own pool — its entry points install theirs on top.)
  const img::PlanePool::Scope pool_scope(service_.plane_pool());
  for (;;) {
    InboundMessage in;
    ReadMessageStatus status;
    try {
      status = read_message(c.socket, in);
    } catch (const WireError&) {
      // The stream is unsynchronised (bad magic/version, oversized or
      // checksum-failing payload): this connection cannot be trusted.
      // Cut it — the service and every other connection keep running.
      protocol_errors_.fetch_add(1);
      c.socket.shutdown_both();
      break;
    }
    if (status == ReadMessageStatus::eof) break; // client finished cleanly
    if (status != ReadMessageStatus::ok) {
      // error, or timeout if a read bound was ever set on this socket:
      // either way the stream position is unknown.
      protocol_errors_.fetch_add(1);
      break;
    }
    if (in.header.type != wire::MessageType::request) {
      // Stream messages (v3) are processed inline right here; see the
      // handle_stream_* declarations for why that is the right thread.
      try {
        switch (in.header.type) {
          case wire::MessageType::stream_open:
            handle_stream_open(c, in.payload);
            break;
          case wire::MessageType::stream_frame:
            handle_stream_frame(c, in.payload);
            break;
          case wire::MessageType::stream_close:
            handle_stream_close(c, in.payload);
            break;
          default:
            throw WireError("wire: client sent a server-to-client message");
        }
      } catch (const WireError&) {
        protocol_errors_.fetch_add(1);
        c.socket.shutdown_both();
        break;
      }
      continue;
    }
    wire::Request request;
    try {
      request = wire::decode_request(in.payload);
    } catch (const WireError&) {
      protocol_errors_.fetch_add(1);
      c.socket.shutdown_both();
      break;
    }
    requests_received_.fetch_add(1);

    // Bounded in-flight window: while it is full the reader stops pulling
    // bytes off the socket, so over-pipelining clients are throttled by
    // TCP flow control instead of server memory.
    {
      std::unique_lock<std::mutex> lock(c.mutex);
      c.window_open.wait(lock, [this, &c] {
        return c.pending.size() <
               static_cast<std::size_t>(options_.max_in_flight_per_connection);
      });
    }

    Connection::PendingReply reply;
    reply.request_id = request.request_id;
    try {
      // May block on the service's admission queue (critical/standard) —
      // more backpressure, same propagation path. Best-effort jobs are
      // shed with Overloaded instead of blocking here.
      reply.future = service_.submit(std::move(request.job));
    } catch (const std::exception& e) {
      // Submit-time rejection (structural, or typed admission shed):
      // answered like any other per-request failure with its typed code;
      // the connection continues.
      reply.immediate_error = true;
      reply.error_code = classify(e);
      reply.error_message = e.what();
    }
    {
      std::lock_guard<std::mutex> lock(c.mutex);
      c.pending.push_back(std::move(reply));
    }
    c.pending_ready.notify_one();
  }
  // Mid-stream disconnect (EOF, protocol violation, broken read alike):
  // reclaim every stream this connection still owns so half-finished
  // producers cannot pin stream slots. Undelivered frames count shed.
  abort_connection_streams(c);
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    c.reader_done = true;
  }
  c.pending_ready.notify_one();
  c.reader_exited.store(true, std::memory_order_release);
}

void Server::enqueue(Connection& c, std::vector<std::uint8_t> message) {
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    c.outbox.push_back(std::move(message));
  }
  c.pending_ready.notify_one();
}

void Server::handle_stream_open(Connection& c,
                                std::span<const std::uint8_t> payload) {
  const wire::StreamOpen open = wire::decode_stream_open(payload);
  if (c.stream_ids.count(open.stream_id) != 0) {
    throw WireError("wire: stream id " + std::to_string(open.stream_id) +
                    " is already open on this connection");
  }
  try {
    const std::uint64_t local = sessions_.open(open.config);
    c.stream_ids.emplace(open.stream_id, local);
    streams_opened_.fetch_add(1);
    enqueue(c, wire::encode_stream_opened(
                   {open.stream_id,
                    static_cast<std::uint32_t>(open.config.credits)}));
  } catch (const std::exception& e) {
    // Rejected open (capacity shed, malformed config): an error reply
    // carrying the stream id in request_id; the connection continues.
    if (classify(e) == wire::ErrorCode::overloaded) {
      requests_shed_.fetch_add(1);
    }
    errors_sent_.fetch_add(1);
    enqueue(c, wire::encode_error({open.stream_id, classify(e), e.what()}));
  }
}

void Server::handle_stream_frame(Connection& c,
                                 std::span<const std::uint8_t> payload) {
  wire::StreamFrame frame = wire::decode_stream_frame(payload);
  stream_frames_received_.fetch_add(1);
  const auto it = c.stream_ids.find(frame.stream_id);
  if (it == c.stream_ids.end()) {
    errors_sent_.fetch_add(1);
    enqueue(c, wire::encode_error({frame.stream_id,
                                   wire::ErrorCode::invalid_argument,
                                   "transport: frame for unknown stream"}));
    return;
  }
  try {
    stream::SubmitOutcome out =
        sessions_.submit_frame(it->second, frame.sequence, frame.frame);
    for (stream::StreamFrameResult& r : out.results) {
      stream_results_sent_.fetch_add(1);
      enqueue(c, wire::encode_stream_result({frame.stream_id, r.sequence,
                                             r.rung, r.backend,
                                             r.service_seconds,
                                             std::move(r.output)}));
    }
    if (out.credits_released > 0) {
      enqueue(c,
              wire::encode_stream_credit({frame.stream_id,
                                          out.credits_released}));
    }
    if (out.stream_shed) {
      // The rate controller shed the whole stream (best_effort overload):
      // finalize it and tell the client spontaneously.
      const stream::CloseResult done = sessions_.close(it->second);
      c.stream_ids.erase(it);
      streams_closed_.fetch_add(1);
      enqueue(c, wire::encode_stream_closed(
                     {frame.stream_id, wire::StreamStatus::shed,
                      done.stats.frames_delivered, done.stats.frames_shed,
                      done.stats.frames_expired,
                      static_cast<std::uint32_t>(done.stats.rung_switches),
                      ""}));
    }
  } catch (const serve::Overloaded& e) {
    // Flow-control window exhausted: per-frame rejection, stream survives.
    requests_shed_.fetch_add(1);
    errors_sent_.fetch_add(1);
    enqueue(c, wire::encode_error(
                   {frame.stream_id, wire::ErrorCode::overloaded, e.what()}));
  } catch (const InvalidArgument& e) {
    // Malformed frame (geometry mismatch, dark frame): per-frame
    // rejection, stream survives.
    errors_sent_.fetch_add(1);
    enqueue(c, wire::encode_error({frame.stream_id,
                                   wire::ErrorCode::invalid_argument,
                                   e.what()}));
  } catch (const std::exception& e) {
    // Processing itself failed: the stream's pipeline state is suspect —
    // abort it as a unit and report the failure terminally.
    const stream::StreamStats st = sessions_.abort(it->second);
    c.stream_ids.erase(it);
    streams_closed_.fetch_add(1);
    enqueue(c, wire::encode_stream_closed(
                   {frame.stream_id, wire::StreamStatus::failed,
                    st.frames_delivered, st.frames_shed, st.frames_expired,
                    static_cast<std::uint32_t>(st.rung_switches),
                    e.what()}));
  }
}

void Server::handle_stream_close(Connection& c,
                                 std::span<const std::uint8_t> payload) {
  const wire::StreamClose close = wire::decode_stream_close(payload);
  const auto it = c.stream_ids.find(close.stream_id);
  if (it == c.stream_ids.end()) {
    errors_sent_.fetch_add(1);
    enqueue(c, wire::encode_error({close.stream_id,
                                   wire::ErrorCode::invalid_argument,
                                   "transport: close for unknown stream"}));
    return;
  }
  const std::uint64_t local = it->second;
  c.stream_ids.erase(it);
  streams_closed_.fetch_add(1);
  try {
    stream::CloseResult done = sessions_.close(local);
    for (stream::StreamFrameResult& r : done.results) {
      stream_results_sent_.fetch_add(1);
      enqueue(c, wire::encode_stream_result({close.stream_id, r.sequence,
                                             r.rung, r.backend,
                                             r.service_seconds,
                                             std::move(r.output)}));
    }
    const wire::StreamStatus status =
        done.stats.state == stream::StreamState::shed
            ? wire::StreamStatus::shed
            : wire::StreamStatus::closed;
    enqueue(c, wire::encode_stream_closed(
                   {close.stream_id, status, done.stats.frames_delivered,
                    done.stats.frames_shed, done.stats.frames_expired,
                    static_cast<std::uint32_t>(done.stats.rung_switches),
                    ""}));
  } catch (const std::exception& e) {
    // close() absorbs processing failures internally; this is the
    // defensive net for anything else (the stream is already retired).
    enqueue(c, wire::encode_stream_closed({close.stream_id,
                                           wire::StreamStatus::failed, 0, 0,
                                           0, 0, e.what()}));
  }
}

void Server::abort_connection_streams(Connection& c) {
  for (const auto& [remote, local] : c.stream_ids) {
    streams_closed_.fetch_add(1); // gone either way — keep opened==closed
    try {
      sessions_.abort(local);
    } catch (const std::exception&) {
      // Already retired (e.g. by a reclaim_stalled sweep): nothing to do.
    }
  }
  c.stream_ids.clear();
}

void Server::writer_loop(Connection& c) {
  const auto send_bytes = [&c](const std::vector<std::uint8_t>& message) {
    if (c.socket.send_all(message) != SendStatus::ok) {
      // error and timeout alike: the peer is not draining this stream.
      std::lock_guard<std::mutex> lock(c.mutex);
      c.write_failed = true;
    }
  };
  const auto send = [&send_bytes](const std::vector<std::uint8_t>& message,
                                  std::atomic<std::uint64_t>& counter) {
    // Count before writing (the service-counter convention): the client
    // can observe the reply the instant the last byte reaches the socket
    // buffer, possibly before this thread runs again — counting after
    // the write would let a stats() reader see the reply but not the
    // count. (Stream replies in the outbox were counted at enqueue, the
    // same convention one step earlier.)
    counter.fetch_add(1);
    send_bytes(message);
  };
  // Error replies additionally advance the shed/expired counters their
  // typed code names.
  const auto send_error = [this, &send](std::uint64_t request_id,
                                        wire::ErrorCode code,
                                        const std::string& message,
                                        bool skip_write) {
    if (code == wire::ErrorCode::overloaded) requests_shed_.fetch_add(1);
    if (code == wire::ErrorCode::deadline_exceeded) {
      requests_expired_.fetch_add(1);
    }
    if (!skip_write) {
      send(wire::encode_error({request_id, code, message}), errors_sent_);
    }
  };

  for (;;) {
    std::unique_lock<std::mutex> lock(c.mutex);
    c.pending_ready.wait(lock, [&c] {
      return !c.outbox.empty() || !c.pending.empty() || c.reader_done;
    });
    // Stream replies first: already encoded, and strictly FIFO — in-order
    // delivery is part of the stream contract.
    if (!c.outbox.empty()) {
      const std::vector<std::uint8_t> message = std::move(c.outbox.front());
      c.outbox.pop_front();
      const bool skip = c.write_failed;
      lock.unlock();
      if (!skip) send_bytes(message);
      continue;
    }
    if (c.pending.empty()) break; // reader done, outbox + window drained

    // Prefer any reply that is already ready — responses go out as
    // futures resolve, not in submission order.
    std::size_t ready = c.pending.size();
    for (std::size_t i = 0; i < c.pending.size(); ++i) {
      Connection::PendingReply& p = c.pending[i];
      if (p.immediate_error ||
          p.future.wait_for(0s) == std::future_status::ready) {
        ready = i;
        break;
      }
    }
    if (ready == c.pending.size()) {
      // Nothing ready: wait briefly on the oldest, outside the lock so
      // the reader can keep appending. The reference stays valid —
      // deque::push_back does not invalidate references, and this thread
      // is the only one that erases.
      Connection::PendingReply& oldest = c.pending.front();
      lock.unlock();
      oldest.future.wait_for(kWriterScanInterval);
      continue;
    }

    Connection::PendingReply reply = std::move(c.pending[ready]);
    c.pending.erase(c.pending.begin() + static_cast<std::ptrdiff_t>(ready));
    const bool skip_write = c.write_failed;
    lock.unlock();
    c.window_open.notify_one();

    if (reply.immediate_error) {
      send_error(reply.request_id, reply.error_code, reply.error_message,
                 skip_write);
      continue;
    }
    try {
      wire::Response response;
      response.request_id = reply.request_id;
      response.result = reply.future.get(); // rethrows execution errors
      if (!skip_write) {
        send(wire::encode_response(response), responses_sent_);
      }
    } catch (const std::exception& e) {
      // DeadlineExceeded travels this path (dequeue / between-stage
      // expiry is discovered by the shard worker, after admission).
      send_error(reply.request_id, classify(e), e.what(), skip_write);
    }
    // skip_write drains the future without writing: the peer is gone but
    // every accepted job still completes (the service guarantees it, and
    // the drain keeps that visible here).
  }
  c.socket.shutdown_both();
  c.writer_exited.store(true, std::memory_order_release);
}

common::StatsSnapshot snapshot(const ServerStats& stats) {
  common::StatsSnapshot out;
  out.scope = "server";
  out.counter("connections_accepted", stats.connections_accepted);
  out.counter("connections_active", stats.connections_active);
  out.counter("requests_received", stats.requests_received);
  out.counter("responses_sent", stats.responses_sent);
  out.counter("errors_sent", stats.errors_sent);
  out.counter("requests_shed", stats.requests_shed);
  out.counter("requests_expired", stats.requests_expired);
  out.counter("protocol_errors", stats.protocol_errors);
  out.counter("streams_opened", stats.streams_opened);
  out.counter("streams_closed", stats.streams_closed);
  out.counter("stream_frames_received", stats.stream_frames_received);
  out.counter("stream_results_sent", stats.stream_results_sent);
  return out;
}

} // namespace tmhls::transport
