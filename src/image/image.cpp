#include "image/image.hpp"

#include <cmath>

#include "common/math.hpp"

namespace tmhls::img {

void luminance_row(const float* row, float* out, int width, int channels) {
  TMHLS_REQUIRE(channels == 1 || channels >= 3,
                "luminance needs 1 or >=3 channels");
  if (channels == 1) {
    for (int x = 0; x < width; ++x) out[x] = row[x];
    return;
  }
  for (int x = 0; x < width; ++x) {
    const float r = row[x * channels + 0];
    const float g = row[x * channels + 1];
    const float b = row[x * channels + 2];
    out[x] = 0.2126f * r + 0.7152f * g + 0.0722f * b;
  }
}

ImageF luminance(const ImageF& rgb) {
  if (rgb.channels() == 1) return rgb;
  TMHLS_REQUIRE(rgb.channels() >= 3, "luminance needs 1 or >=3 channels");
  ImageF out(rgb.width(), rgb.height(), 1);
  for (int y = 0; y < rgb.height(); ++y) {
    luminance_row(&rgb.at_unchecked(0, y), &out.at_unchecked(0, y),
                  rgb.width(), rgb.channels());
  }
  return out;
}

ImageF extract_channel(const ImageF& src, int channel) {
  TMHLS_REQUIRE(channel >= 0 && channel < src.channels(),
                "channel out of range");
  ImageF out(src.width(), src.height(), 1);
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < src.width(); ++x) {
      out.at_unchecked(x, y) = src.at_unchecked(x, y, channel);
    }
  }
  return out;
}

ImageF absolute_difference(const ImageF& a, const ImageF& b) {
  TMHLS_REQUIRE(a.same_shape(b), "absolute_difference: shape mismatch");
  ImageF out(a.width(), a.height(), a.channels());
  auto sa = a.samples();
  auto sb = b.samples();
  auto so = out.samples();
  for (std::size_t i = 0; i < sa.size(); ++i) {
    so[i] = std::abs(sa[i] - sb[i]);
  }
  return out;
}

ImageU8 to_u8(const ImageF& src) {
  ImageU8 out(src.width(), src.height(), src.channels());
  auto si = src.samples();
  auto so = out.samples();
  for (std::size_t i = 0; i < si.size(); ++i) {
    const float scaled = clamp(si[i], 0.0f, 1.0f) * 255.0f;
    so[i] = static_cast<std::uint8_t>(std::lround(scaled));
  }
  return out;
}

ImageF to_float(const ImageU8& src) {
  ImageF out(src.width(), src.height(), src.channels());
  auto si = src.samples();
  auto so = out.samples();
  for (std::size_t i = 0; i < si.size(); ++i) {
    so[i] = static_cast<float>(si[i]) / 255.0f;
  }
  return out;
}

} // namespace tmhls::img
