// img::PlanePool — a thread-safe, geometry-keyed arena of recycled ImageF
// plane buffers, the software analogue of the paper's BRAM line-buffer
// discipline: the FPGA pipeline never re-fetches a full-frame intermediate
// from DRAM, and a warm serving stack should never re-allocate one from
// the heap. Allocation + memcpy dominate a 1024x768 float job once the
// blur is SIMD-fast (ROADMAP "Zero-copy frame memory"); this layer removes
// the allocation half.
//
// How it plugs in: Image<float> routes its storage acquisition through a
// per-thread recycler hook (see the detail:: declarations in image.hpp).
// A thread with a PlanePool::Scope installed satisfies every ImageF
// construction from the pool's free lists when a buffer of the exact
// geometry (sample count) is retained, allocating fresh only on a miss —
// and every such plane carries a shared_ptr to the pool's recycler, so
// its buffer returns to the pool when the plane dies, from ANY thread,
// even after the PlanePool itself is gone (the recycler outlives the pool
// exactly as long as planes still reference it; late returns are freed,
// not retained). Threads without a scope are untouched: they allocate and
// free planes exactly as before.
//
// Bit-identity is a hard invariant: recycled buffers are zero-filled on
// acquire, so a pooled ImageF is indistinguishable from a fresh
// value-initialised one. The pool changes where memory comes from, never
// what any pipeline computes.
//
// Bounded retention: the pool retains at most `max_retained_bytes` of idle
// buffers, evicting least-recently-used ones (across all geometries) when
// a return would exceed the bound. PoolStats exposes the exact counter
// balance tests pin down: acquires == pool_hits + fresh_allocs, and every
// returned buffer is either retained (counted in retained_bytes) or
// evicted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "common/stats.hpp"
#include "image/image.hpp"

namespace tmhls::img {

/// Lifetime counters (and one gauge) of a PlanePool. Snapshot via
/// PlanePool::stats(); internally consistent (taken under one lock).
struct PoolStats {
  /// Plane acquisitions served by this pool (hits + fresh allocations).
  std::uint64_t acquires = 0;
  /// Acquisitions satisfied from a retained buffer (no heap allocation).
  std::uint64_t pool_hits = 0;
  /// Acquisitions that had to allocate a fresh buffer (cold geometry, or
  /// the matching free list was empty).
  std::uint64_t fresh_allocs = 0;
  /// Buffers handed back by dying planes (whether retained or dropped).
  std::uint64_t returned = 0;
  /// Returned buffers dropped instead of retained: LRU evictions under the
  /// retained-bytes bound, oversize returns, trim(), and returns arriving
  /// after the pool was destroyed.
  std::uint64_t evicted = 0;
  /// Gauge: bytes currently held in the free lists, always <= the bound.
  std::uint64_t retained_bytes = 0;
};

/// Flatten into the common reporting form (scope "pool").
common::StatsSnapshot snapshot(const PoolStats& stats);

namespace detail {

/// The calling thread's installed plane recycler (null when unpooled).
/// Worker-pool constructors snapshot this to inherit the creating
/// thread's scope into their worker threads.
RecyclerPtr current_recycler() noexcept;

/// Install `recycler` (may be null) as the calling thread's plane
/// recycler for this object's lifetime; restores the previous recycler on
/// destruction. This is the propagation primitive worker pools use to
/// inherit the scope of the thread that created them (exec::AsyncExecutor
/// snapshots current_recycler() at construction and installs it in each
/// worker). Most callers want PlanePool::Scope instead.
class ScopedRecycler {
public:
  explicit ScopedRecycler(RecyclerPtr recycler) noexcept;
  ~ScopedRecycler();

  ScopedRecycler(const ScopedRecycler&) = delete;
  ScopedRecycler& operator=(const ScopedRecycler&) = delete;

private:
  RecyclerPtr previous_;
};

} // namespace detail

/// An ImageF whose storage is bound to a pool: it IS the RAII handle — the
/// buffer returns to the pool's free lists when the image is destroyed
/// (or shrinks out of it by move-assignment). Spelled as an alias because
/// pooling is a property the hook gives every ImageF constructed under a
/// scope; PlanePool::acquire() names the explicit form.
using PooledPlane = ImageF;

/// The geometry-keyed plane arena. Thread-safe: acquire() and plane
/// returns may run concurrently from any threads.
class PlanePool {
public:
  /// Default retention bound: 256 MiB, ~85 full 1024x768 RGB float frames.
  static constexpr std::size_t kDefaultMaxRetainedBytes =
      std::size_t{256} << 20;

  explicit PlanePool(std::size_t max_retained_bytes = kDefaultMaxRetainedBytes);
  /// Drops every retained buffer. Planes still alive keep their storage
  /// and return it safely afterwards (freed on arrival, not retained).
  ~PlanePool();

  PlanePool(const PlanePool&) = delete;
  PlanePool& operator=(const PlanePool&) = delete;

  /// A zero-filled width x height x channels plane backed by this pool:
  /// a retained buffer of the exact geometry when one is free, a fresh
  /// allocation otherwise. Same validation as the ImageF constructor.
  PooledPlane acquire(int width, int height, int channels = 1);

  /// Counter snapshot (see PoolStats).
  PoolStats stats() const;

  /// Drop every retained buffer (counted evicted); the pool stays usable.
  void trim();

  std::size_t max_retained_bytes() const { return max_retained_bytes_; }

  /// RAII: installs this pool as the calling thread's plane recycler, so
  /// every ImageF the thread constructs in the scope is pool-backed.
  /// The pointer form accepts nullptr as "leave the thread's ambient
  /// recycler alone" — call sites with an optional pool stay branch-free.
  class Scope {
  public:
    explicit Scope(PlanePool& pool) : scoped_(std::in_place, pool.recycler_) {}
    explicit Scope(PlanePool* pool) {
      if (pool != nullptr) scoped_.emplace(pool->recycler_);
    }

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

  private:
    std::optional<detail::ScopedRecycler> scoped_;
  };

private:
  std::size_t max_retained_bytes_;
  detail::RecyclerPtr recycler_;
};

/// Process-wide count of fresh float-plane buffer allocations (pooled
/// misses and unpooled constructions alike; pool hits don't advance it).
/// The allocation-budget tests assert a warm steady-state job leaves this
/// counter unchanged. Monotonic; compare deltas, not absolute values.
std::uint64_t plane_allocation_count() noexcept;

} // namespace tmhls::img
