// Image containers used throughout tmhls.
//
// Images are interleaved row-major (`pixel = (y * width + x) * channels + c`)
// with 1 to 4 channels. `Image<float>` holds linear-light HDR data; the
// tone-mapping pipeline produces display-referred values in [0, 1].
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "common/error.hpp"

namespace tmhls::img {

namespace detail {

/// Shared free-list state of a PlanePool (defined in plane_pool.cpp). A
/// float plane acquired under a pool scope carries a shared_ptr to its
/// recycler — "where my storage goes when I die" — which keeps the
/// recycler alive for planes that outlive their pool and makes returns
/// safe from any thread.
class PlaneRecycler;
using RecyclerPtr = std::shared_ptr<PlaneRecycler>;

/// A float plane's storage plus the recycler it is bound to (null when
/// the acquiring thread had no pool scope installed).
struct AcquiredPlane {
  std::vector<float> storage;
  RecyclerPtr recycler;
};

/// Acquire zero-filled storage for `samples` floats, consulting the
/// calling thread's installed recycler: a retained buffer of the exact
/// sample count when the pool has one (no heap allocation), a fresh
/// value-initialised vector otherwise. Fresh allocations advance the
/// process-wide plane_allocation_count().
AcquiredPlane acquire_plane(std::size_t samples);

/// Hand a dying plane's storage back to the recycler it was acquired
/// from. Never called with a null recycler.
void release_plane(const RecyclerPtr& recycler,
                   std::vector<float>&& storage) noexcept;

} // namespace detail

/// Interleaved row-major image with `channels` samples per pixel.
///
/// Float images participate in plane pooling: construction routes storage
/// acquisition through the calling thread's recycler hook (see
/// plane_pool.hpp), and a pool-backed image returns its buffer to the
/// pool on destruction. This is invisible to users — a pooled image is
/// zero-filled and behaves exactly like a fresh one — but it is why the
/// special members below are spelled out instead of defaulted.
template <typename T>
class Image {
public:
  /// Empty 0x0 image.
  Image() = default;

  /// Allocate a width x height image with `channels` samples per pixel,
  /// value-initialised (zeros for arithmetic T).
  Image(int width, int height, int channels = 1)
      : width_(width), height_(height), channels_(channels) {
    TMHLS_REQUIRE(width > 0 && height > 0, "image dimensions must be positive");
    TMHLS_REQUIRE(channels >= 1 && channels <= 4,
                  "channels must be in [1, 4]");
    init_storage(static_cast<std::size_t>(width) *
                 static_cast<std::size_t>(height) *
                 static_cast<std::size_t>(channels));
  }

  Image(const Image& other)
      : width_(other.width_), height_(other.height_),
        channels_(other.channels_) {
    init_storage(other.data_.size());
    std::copy(other.data_.begin(), other.data_.end(), data_.begin());
  }

  Image& operator=(const Image& other) {
    if (this == &other) return *this;
    // Matching sample count: copy in place, keeping this image's storage
    // (and its pool binding, if any). Otherwise release and re-acquire.
    if (data_.size() != other.data_.size()) {
      release_storage();
      init_storage(other.data_.size());
    }
    width_ = other.width_;
    height_ = other.height_;
    channels_ = other.channels_;
    std::copy(other.data_.begin(), other.data_.end(), data_.begin());
    return *this;
  }

  Image(Image&& other) noexcept
      : width_(other.width_), height_(other.height_),
        channels_(other.channels_), data_(std::move(other.data_)),
        recycler_(std::move(other.recycler_)) {
    other.reset_to_empty();
  }

  Image& operator=(Image&& other) noexcept {
    if (this == &other) return *this;
    release_storage();
    width_ = other.width_;
    height_ = other.height_;
    channels_ = other.channels_;
    data_ = std::move(other.data_);
    recycler_ = std::move(other.recycler_);
    other.reset_to_empty();
    return *this;
  }

  ~Image() { release_storage(); }

  int width() const { return width_; }
  int height() const { return height_; }
  int channels() const { return channels_; }
  /// Total number of samples (width * height * channels).
  std::size_t sample_count() const { return data_.size(); }
  /// Total number of pixels (width * height).
  std::size_t pixel_count() const {
    return static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
  }
  bool empty() const { return data_.empty(); }

  /// Sample accessor; (x, y) must be inside the image, c < channels.
  T& at(int x, int y, int c = 0) {
    TMHLS_ASSERT(in_bounds(x, y, c), "image access out of bounds");
    return data_[index(x, y, c)];
  }
  const T& at(int x, int y, int c = 0) const {
    TMHLS_ASSERT(in_bounds(x, y, c), "image access out of bounds");
    return data_[index(x, y, c)];
  }

  /// Unchecked accessor for inner loops (bounds guaranteed by the caller).
  T& at_unchecked(int x, int y, int c = 0) { return data_[index(x, y, c)]; }
  const T& at_unchecked(int x, int y, int c = 0) const {
    return data_[index(x, y, c)];
  }

  /// Flat view over all samples.
  std::span<T> samples() { return data_; }
  std::span<const T> samples() const { return data_; }

  /// View over one row (all channels interleaved).
  std::span<T> row(int y) {
    TMHLS_ASSERT(y >= 0 && y < height_, "row out of bounds");
    return std::span<T>(data_).subspan(index(0, y, 0),
                                       static_cast<std::size_t>(width_) *
                                           static_cast<std::size_t>(channels_));
  }
  std::span<const T> row(int y) const {
    TMHLS_ASSERT(y >= 0 && y < height_, "row out of bounds");
    return std::span<const T>(data_).subspan(
        index(0, y, 0),
        static_cast<std::size_t>(width_) * static_cast<std::size_t>(channels_));
  }

  /// Fill every sample with `v`.
  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  /// True if the two images have identical dimensions and channel count.
  bool same_shape(const Image& other) const {
    return width_ == other.width_ && height_ == other.height_ &&
           channels_ == other.channels_;
  }

private:
  /// Acquire storage for `samples` samples. Float planes consult the
  /// calling thread's recycler hook; every other sample type allocates
  /// plainly. Both paths leave the data zero-filled.
  void init_storage(std::size_t samples) {
    if constexpr (std::is_same_v<T, float>) {
      detail::AcquiredPlane plane = detail::acquire_plane(samples);
      data_ = std::move(plane.storage);
      recycler_ = std::move(plane.recycler);
    } else {
      data_.assign(samples, T{});
    }
  }

  /// Hand pool-backed storage home; plain storage just frees normally.
  void release_storage() noexcept {
    if constexpr (std::is_same_v<T, float>) {
      if (recycler_ != nullptr) {
        detail::release_plane(recycler_, std::move(data_));
        recycler_.reset();
        data_.clear();
      }
    }
  }

  /// Restore the moved-from state the default constructor produces.
  void reset_to_empty() noexcept {
    width_ = 0;
    height_ = 0;
    channels_ = 1;
    data_.clear();
    recycler_.reset();
  }

  bool in_bounds(int x, int y, int c) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_ && c >= 0 &&
           c < channels_;
  }
  std::size_t index(int x, int y, int c) const {
    return (static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
            static_cast<std::size_t>(x)) *
               static_cast<std::size_t>(channels_) +
           static_cast<std::size_t>(c);
  }

  int width_ = 0;
  int height_ = 0;
  int channels_ = 1;
  std::vector<T> data_;
  /// Non-null only for pool-backed float planes (see init_storage).
  detail::RecyclerPtr recycler_;
};

using ImageF = Image<float>;
using ImageU8 = Image<std::uint8_t>;

/// ITU-R BT.709 relative luminance of an RGB image; a 1-channel image passes
/// through unchanged (copied).
ImageF luminance(const ImageF& rgb);

/// luminance() over one interleaved row of `width` pixels with `channels`
/// samples each, into a 1-channel row; channels == 1 copies. The row form
/// is shared with the tone-map fused streaming engine so the per-sample
/// arithmetic has one source of truth. `channels` must be 1 or >= 3.
void luminance_row(const float* row, float* out, int width, int channels);

/// Extract one channel as a 1-channel image.
ImageF extract_channel(const ImageF& src, int channel);

/// Per-sample absolute difference.
ImageF absolute_difference(const ImageF& a, const ImageF& b);

/// Convert a [0,1] float image to 8-bit with rounding and clamping.
ImageU8 to_u8(const ImageF& src);

/// Convert an 8-bit image to floats in [0, 1].
ImageF to_float(const ImageU8& src);

} // namespace tmhls::img
