#include "image/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace tmhls::img {

Stats compute_stats(const ImageF& im) {
  TMHLS_REQUIRE(!im.empty(), "compute_stats on empty image");
  auto s = im.samples();
  Stats st;
  st.min = s[0];
  st.max = s[0];
  double sum = 0.0;
  for (float v : s) {
    st.min = std::min(st.min, v);
    st.max = std::max(st.max, v);
    sum += v;
  }
  st.mean = sum / static_cast<double>(s.size());
  double var = 0.0;
  for (float v : s) {
    const double d = v - st.mean;
    var += d * d;
  }
  st.stddev = std::sqrt(var / static_cast<double>(s.size()));

  std::vector<float> sorted(s.begin(), s.end());
  std::sort(sorted.begin(), sorted.end());
  auto percentile = [&](double p) {
    const double idx = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return static_cast<float>((1.0 - frac) * sorted[lo] + frac * sorted[hi]);
  };
  st.percentile_1 = percentile(1.0);
  st.percentile_99 = percentile(99.0);
  return st;
}

DynamicRange compute_dynamic_range(const ImageF& im, float floor) {
  TMHLS_REQUIRE(!im.empty(), "compute_dynamic_range on empty image");
  std::vector<float> positive;
  positive.reserve(im.sample_count());
  for (float v : im.samples()) {
    if (v > floor) positive.push_back(v);
  }
  DynamicRange dr;
  if (positive.empty()) return dr;
  std::sort(positive.begin(), positive.end());
  const double lo = positive.front();
  const double hi = positive.back();
  dr.ratio = hi / lo;
  dr.stops = std::log2(dr.ratio);
  dr.decades = std::log10(dr.ratio);
  const auto p = [&](double pct) {
    const double idx = pct / 100.0 * static_cast<double>(positive.size() - 1);
    return static_cast<double>(positive[static_cast<std::size_t>(idx)]);
  };
  dr.robust_ratio = p(99.0) / std::max(p(1.0), static_cast<double>(floor));
  return dr;
}

} // namespace tmhls::img
