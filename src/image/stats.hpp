// Image statistics: range, percentiles, dynamic range in stops/decades.
// Used to characterise HDR inputs (§II: HDR images have a very high ratio
// between the luminance of the brightest and darkest pixel).
#pragma once

#include "image/image.hpp"

namespace tmhls::img {

/// Summary statistics of the samples of an image.
struct Stats {
  float min = 0.0f;          ///< smallest sample
  float max = 0.0f;          ///< largest sample
  double mean = 0.0;         ///< arithmetic mean
  double stddev = 0.0;       ///< population standard deviation
  float percentile_1 = 0.0f; ///< 1st percentile (robust floor)
  float percentile_99 = 0.0f;///< 99th percentile (robust ceiling)
};

/// Compute summary statistics over every sample of `im`.
Stats compute_stats(const ImageF& im);

/// Dynamic range characterisation of an HDR luminance image.
struct DynamicRange {
  double ratio = 0.0;   ///< max / min over positive samples
  double stops = 0.0;   ///< log2(ratio)
  double decades = 0.0; ///< log10(ratio)
  double robust_ratio = 0.0; ///< p99 / p1 over positive samples
};

/// Compute the dynamic range of `im` considering only samples > `floor`
/// (zero/negative samples carry no luminance information).
DynamicRange compute_dynamic_range(const ImageF& im, float floor = 1e-12f);

} // namespace tmhls::img
