#include "image/plane_pool.hpp"

#include <atomic>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <utility>

namespace tmhls::img {

common::StatsSnapshot snapshot(const PoolStats& stats) {
  common::StatsSnapshot out;
  out.scope = "pool";
  out.counter("acquires", stats.acquires);
  out.counter("pool_hits", stats.pool_hits);
  out.counter("fresh_allocs", stats.fresh_allocs);
  out.counter("returned", stats.returned);
  out.counter("evicted", stats.evicted);
  out.counter("retained_bytes", stats.retained_bytes);
  return out;
}

} // namespace tmhls::img

namespace tmhls::img {

namespace detail {

namespace {

/// Fresh float-plane buffer allocations, process-wide. Relaxed: the tests
/// that read it synchronise through the service/pipeline futures first.
std::atomic<std::uint64_t> g_plane_allocations{0};

/// The calling thread's installed recycler. A plain thread_local
/// shared_ptr: installation is a pointer swap, and the control block
/// keeps the shared state alive across thread teardown orderings.
thread_local RecyclerPtr t_recycler;

} // namespace

/// The shared free-list state one PlanePool's planes return to. Keyed by
/// exact sample count (one geometry maps to one key; distinct geometries
/// never serve each other's acquires — even when their byte sizes match,
/// a w*h*c product collision IS the same sample count, which is the only
/// property the storage has). LRU eviction is global across keys: every
/// retained buffer carries a monotonic stamp, and the globally oldest one
/// goes first when a return would exceed the retention bound.
class PlaneRecycler {
public:
  explicit PlaneRecycler(std::size_t max_retained_bytes)
      : max_retained_bytes_(max_retained_bytes) {}

  /// Pop a retained buffer of exactly `samples` floats, or report a miss
  /// (the caller then allocates fresh). The returned buffer is NOT yet
  /// zeroed — the caller zero-fills outside the lock.
  bool try_reuse(std::size_t samples, std::vector<float>& out) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.acquires;
    auto it = free_.find(samples);
    if (it == free_.end() || it->second.empty()) {
      ++stats_.fresh_allocs;
      return false;
    }
    // Most-recently-returned first: the warmest buffer wins, and the
    // per-key deque stays sorted oldest-at-front for the LRU sweep.
    out = std::move(it->second.back().storage);
    it->second.pop_back();
    if (it->second.empty()) free_.erase(it);
    ++stats_.pool_hits;
    stats_.retained_bytes -= bytes_of(out);
    return true;
  }

  void release(std::vector<float>&& storage) noexcept {
    const std::size_t bytes = bytes_of(storage);
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.returned;
    if (closed_ || bytes == 0 || bytes > max_retained_bytes_) {
      ++stats_.evicted;
      return; // dropped: `storage` frees on scope exit
    }
    try {
      free_[storage.size()].push_back(Retained{std::move(storage), ++clock_});
    } catch (...) {
      ++stats_.evicted; // free-list bookkeeping failed: drop the buffer
      return;
    }
    stats_.retained_bytes += bytes;
    while (stats_.retained_bytes > max_retained_bytes_) evict_oldest();
  }

  PoolStats stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

  /// Drop every retained buffer (each counted evicted).
  void trim() {
    const std::lock_guard<std::mutex> lock(mutex_);
    while (!free_.empty()) evict_oldest();
  }

  /// trim() + refuse retention from now on — the owning PlanePool is
  /// gone; planes still alive return their buffers to be freed.
  void close() {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    while (!free_.empty()) evict_oldest();
  }

private:
  struct Retained {
    std::vector<float> storage;
    std::uint64_t stamp = 0; ///< global LRU clock at return time
  };

  static std::size_t bytes_of(const std::vector<float>& storage) {
    return storage.capacity() * sizeof(float);
  }

  /// Drop the globally least-recently-returned buffer. Caller holds the
  /// lock and guarantees the free lists are non-empty.
  void evict_oldest() {
    auto oldest = free_.end();
    std::uint64_t oldest_stamp = std::numeric_limits<std::uint64_t>::max();
    for (auto it = free_.begin(); it != free_.end(); ++it) {
      // Front is each key's oldest (returns append, reuse pops the back).
      if (it->second.front().stamp < oldest_stamp) {
        oldest_stamp = it->second.front().stamp;
        oldest = it;
      }
    }
    stats_.retained_bytes -= bytes_of(oldest->second.front().storage);
    ++stats_.evicted;
    oldest->second.pop_front();
    if (oldest->second.empty()) free_.erase(oldest);
  }

  mutable std::mutex mutex_;
  const std::size_t max_retained_bytes_;
  bool closed_ = false;
  std::uint64_t clock_ = 0;
  std::map<std::size_t, std::deque<Retained>> free_;
  PoolStats stats_;
};

AcquiredPlane acquire_plane(std::size_t samples) {
  if (samples == 0) return {};
  AcquiredPlane plane;
  plane.recycler = t_recycler;
  if (plane.recycler != nullptr &&
      plane.recycler->try_reuse(samples, plane.storage)) {
    // Zero-fill outside the pool lock: capacity already fits (exact-key
    // reuse), so assign() is a memset, never an allocation — which is
    // what makes a pooled plane bit-identical to a value-initialised one.
    plane.storage.assign(samples, 0.0f);
    return plane;
  }
  g_plane_allocations.fetch_add(1, std::memory_order_relaxed);
  plane.storage = std::vector<float>(samples);
  return plane;
}

void release_plane(const RecyclerPtr& recycler,
                   std::vector<float>&& storage) noexcept {
  recycler->release(std::move(storage));
}

RecyclerPtr current_recycler() noexcept { return t_recycler; }

ScopedRecycler::ScopedRecycler(RecyclerPtr recycler) noexcept
    : previous_(std::move(t_recycler)) {
  t_recycler = std::move(recycler);
}

ScopedRecycler::~ScopedRecycler() { t_recycler = std::move(previous_); }

} // namespace detail

PlanePool::PlanePool(std::size_t max_retained_bytes)
    : max_retained_bytes_(max_retained_bytes),
      recycler_(std::make_shared<detail::PlaneRecycler>(max_retained_bytes)) {}

PlanePool::~PlanePool() { recycler_->close(); }

PooledPlane PlanePool::acquire(int width, int height, int channels) {
  // Route through the thread hook so the one acquisition path serves both
  // the explicit API and ambient scoped construction.
  const detail::ScopedRecycler scope(recycler_);
  return ImageF(width, height, channels);
}

PoolStats PlanePool::stats() const { return recycler_->stats(); }

void PlanePool::trim() { recycler_->trim(); }

std::uint64_t plane_allocation_count() noexcept {
  return detail::g_plane_allocations.load(std::memory_order_relaxed);
}

} // namespace tmhls::img
